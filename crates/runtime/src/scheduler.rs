//! Round-robin execution with the §5.3 collection protocol.
//!
//! Threads run in fixed quanta (simulated pre-emption). When a thread's
//! allocation fails, a collection becomes pending; all other threads are
//! resumed and run until each blocks at a gc-point (bounded, thanks to
//! loop gc-points), then the collector runs and everyone resumes.

use m3gc_core::decode::{DecodeCache, DecodeError};
use m3gc_core::stats::{BarrierCounters, GcKind};
use m3gc_jit::{JitEngine, JitSummary};
use m3gc_vm::machine::{Machine, RunOutcome, ThreadStatus, VmTrap};

use crate::collector::{self, GcStats};
use crate::gengc;
use crate::options::RuntimeOptions;
use crate::trace::StackWatermarks;

/// What happens when a collection is due.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GcMode {
    /// Real compacting collection.
    #[default]
    Full,
    /// Decode tables and walk stacks but move nothing (§6.3's "collection
    /// being a stack trace"). Only useful with forced collections and a
    /// heap large enough to never fill.
    TraceOnly,
    /// Do nothing at collection events (§6.3's "null call" baseline).
    Null,
}

/// Result of running a program to completion.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Program output.
    pub output: String,
    /// Collections performed.
    pub collections: u64,
    /// Minor collections performed (generational heaps only).
    pub minor_collections: u64,
    /// Major collections performed (generational heaps only).
    pub major_collections: u64,
    /// Aggregate collection statistics.
    pub gc_total: GcStats,
    /// Per-collection statistics.
    pub gc_each: Vec<GcStats>,
    /// Write-barrier counters accumulated over the run.
    pub barrier: BarrierCounters,
    /// Remembered-set size at the end of the run.
    pub remembered_len: usize,
    /// Instructions executed.
    pub steps: u64,
}

/// Execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A thread trapped.
    Trap(VmTrap),
    /// The instruction budget ran out.
    OutOfFuel,
    /// A thread failed to reach a gc-point within the advance budget
    /// (missing loop gc-points).
    StuckThread {
        /// The offending thread.
        thread: usize,
    },
    /// The gc-map precision oracle found a table entry contradicting the
    /// shadow ground truth (see `crate::oracle`).
    Oracle(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Trap(t) => write!(f, "program trapped: {t}"),
            ExecError::OutOfFuel => write!(f, "instruction budget exhausted"),
            ExecError::StuckThread { thread } => {
                write!(f, "thread {thread} failed to reach a gc-point")
            }
            ExecError::Oracle(msg) => write!(f, "gc-map oracle violation: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The executor: a machine plus scheduling state.
pub struct Executor {
    /// The machine.
    pub machine: Machine,
    /// Configuration.
    pub options: RuntimeOptions,
    /// Per-collection statistics.
    pub gc_each: Vec<GcStats>,
    /// Memoizing decode cache over the module's gc maps, built once at
    /// load and bound to the machine's module token: across all the
    /// collections of a run, each gc-point's tables decode at most once.
    cache: DecodeCache,
    /// Per-thread stack watermark caches: minor collections splice the
    /// unchanged cold suffix of each stack instead of rescanning it.
    /// Verification (splice vs. full rescan) is armed whenever the
    /// oracle is.
    watermarks: StackWatermarks,
    next_forced: Option<u64>,
    /// Native baseline engine (`--jit`); `None` runs the interpreter.
    /// The collectors never see this — JIT frames resolve to bytecode
    /// pcs through the machine's installed code map.
    jit: Option<Box<JitEngine>>,
}

impl Executor {
    /// Wraps a machine.
    ///
    /// # Panics
    ///
    /// Panics if the module's gc maps are malformed (they come from the
    /// compiler, so this is a bug). Use [`Executor::try_new`] to handle
    /// the error instead.
    #[must_use]
    pub fn new(machine: Machine, options: impl Into<RuntimeOptions>) -> Executor {
        Self::try_new(machine, options).expect("valid gc maps")
    }

    /// Wraps a machine, surfacing gc-map decode failures.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the module's encoded gc tables are
    /// malformed.
    pub fn try_new(
        mut machine: Machine,
        options: impl Into<RuntimeOptions>,
    ) -> Result<Executor, DecodeError> {
        let options = options.into();
        let next_forced = options.force_every_allocs.map(|n| n.max(1));
        machine.set_force_gc_after(next_forced);
        let mut cache = DecodeCache::build(&machine.module.gc_maps)?;
        cache.bind_module(machine.module_token());
        let watermarks = StackWatermarks::new(options.oracle);
        let jit = options.jit.then(|| {
            let engine = Box::new(JitEngine::for_machine(&machine));
            machine.set_code_map(engine.code_map());
            engine
        });
        Ok(Executor { machine, options, gc_each: Vec::new(), cache, watermarks, next_forced, jit })
    }

    /// A snapshot of the JIT engine's statistics, if `--jit` was set.
    #[must_use]
    pub fn jit_summary(&self) -> Option<JitSummary> {
        self.jit.as_deref().map(JitEngine::summary)
    }

    /// Test hook: corrupts one native return-address key in the code
    /// map (see `JitEngine::corrupt_gc_point_key`) and installs the
    /// corrupted map on the machine, returning the key's (old, new)
    /// native offsets. Returns `None` without `--jit` or when `idx` is
    /// out of range.
    #[doc(hidden)]
    pub fn corrupt_jit_gc_point(&mut self, idx: usize, delta: i32) -> Option<(u32, u32)> {
        let engine = self.jit.as_deref_mut()?;
        if idx >= engine.code_map().gc_points().len() {
            return None;
        }
        let (map, swapped) = engine.corrupt_gc_point_key(idx, delta);
        self.machine.set_code_map(map);
        Some(swapped)
    }

    /// Runs `tid` for up to `fuel` instructions through the JIT when
    /// enabled, the interpreter otherwise.
    fn run_thread(&mut self, tid: usize, fuel: u64) -> RunOutcome {
        match self.jit.as_deref() {
            Some(engine) => engine.run_thread(&mut self.machine, tid, fuel),
            None => self.machine.run_thread(tid, fuel),
        }
    }

    /// The decode cache (for inspecting hit/miss counters and memo size).
    #[must_use]
    pub fn decode_cache(&self) -> &DecodeCache {
        &self.cache
    }

    /// Spawns the module's main procedure as thread 0 and runs to
    /// completion.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on trap, fuel exhaustion, heap exhaustion
    /// or a stuck thread.
    pub fn run_main(&mut self) -> Result<ExecOutcome, ExecError> {
        let main = self.machine.module.main;
        self.machine.spawn(main, &[]);
        self.run()
    }

    /// Brings every non-finished thread to a gc-point.
    fn advance_all(&mut self) -> Result<(), ExecError> {
        debug_assert!(self.machine.gc_pending);
        for tid in 0..self.machine.threads.len() {
            if self.machine.threads[tid].status != ThreadStatus::Runnable {
                continue;
            }
            match self.run_thread(tid, self.options.max_advance) {
                RunOutcome::AtGcPoint | RunOutcome::Finished | RunOutcome::NeedGc => {}
                RunOutcome::OutOfFuel => return Err(ExecError::StuckThread { thread: tid }),
                RunOutcome::Trap(t) => return Err(ExecError::Trap(t)),
            }
        }
        Ok(())
    }

    fn do_collection(&mut self) -> Result<(), ExecError> {
        if self.options.oracle && self.machine.shadow.is_some() {
            crate::oracle::check(&self.machine, &mut self.cache).map_err(ExecError::Oracle)?;
        }
        let stats = match self.options.gc_mode {
            GcMode::Full if self.machine.is_generational() => {
                gengc::collect_with(&mut self.machine, &mut self.cache, Some(&mut self.watermarks))
                    .map_err(ExecError::Trap)?
            }
            GcMode::Full => {
                // Full semispace collections always rescan; keep the
                // watermark state cold so a later mode switch cannot
                // splice stale frames.
                self.watermarks.invalidate_all();
                collector::collect(&mut self.machine, &mut self.cache)
            }
            GcMode::TraceOnly => {
                let s = collector::trace_only(&mut self.machine, &mut self.cache);
                // No flip happened; release the threads manually.
                let alloc = self.machine.alloc_ptr;
                let was_pending = self.machine.gc_pending;
                if was_pending {
                    // Pretend a collection happened at the same spot.
                    self.machine.gc_pending = false;
                    for t in &mut self.machine.threads {
                        if t.status == ThreadStatus::BlockedAtGcPoint {
                            t.status = ThreadStatus::Runnable;
                        }
                    }
                    self.machine.collections += 1;
                }
                let _ = alloc;
                s
            }
            GcMode::Null => {
                self.machine.gc_pending = false;
                for t in &mut self.machine.threads {
                    if t.status == ThreadStatus::BlockedAtGcPoint {
                        t.status = ThreadStatus::Runnable;
                    }
                }
                self.machine.collections += 1;
                GcStats::default()
            }
        };
        self.gc_each.push(stats);
        Ok(())
    }

    /// Runs until every thread finishes.
    ///
    /// # Errors
    ///
    /// See [`Executor::run_main`].
    pub fn run(&mut self) -> Result<ExecOutcome, ExecError> {
        let mut fuel = self.options.fuel;
        let mut last_gc_allocations: Option<u64> = None;
        'sched: loop {
            let mut any = false;
            for tid in 0..self.machine.threads.len() {
                if self.machine.threads[tid].status != ThreadStatus::Runnable {
                    continue;
                }
                any = true;
                let _ = any;
                let quantum = self.options.quantum.min(fuel);
                if quantum == 0 {
                    return Err(ExecError::OutOfFuel);
                }
                let before = self.machine.steps;
                let r = self.run_thread(tid, quantum);
                fuel = fuel.saturating_sub(self.machine.steps - before);
                match r {
                    RunOutcome::Finished | RunOutcome::OutOfFuel | RunOutcome::AtGcPoint => {}
                    RunOutcome::Trap(t) => return Err(ExecError::Trap(t)),
                    RunOutcome::NeedGc => {
                        let forced =
                            self.next_forced.is_some_and(|n| self.machine.allocations >= n);
                        if forced {
                            let every =
                                self.options.force_every_allocs.expect("forced implies configured");
                            self.next_forced = Some(self.machine.allocations + every.max(1));
                            self.machine.set_force_gc_after(self.next_forced);
                        } else if last_gc_allocations == Some(self.machine.allocations) {
                            // No allocation progress since the previous
                            // (real) collection. On a generational heap a
                            // fruitless minor escalates to a major before
                            // giving up; a fruitless major is the end.
                            let last_major =
                                self.gc_each.last().is_some_and(|s| s.kind == GcKind::Major);
                            if self.machine.is_generational() && !last_major {
                                self.machine.wants_major_gc = true;
                            } else {
                                return Err(ExecError::Trap(VmTrap::OutOfMemory));
                            }
                        } else {
                            last_gc_allocations = Some(self.machine.allocations);
                        }
                        self.advance_all()?;
                        self.do_collection()?;
                    }
                }
                continue 'sched;
            }
            if !any {
                break;
            }
        }
        let gc_total = self.gc_each.iter().fold(GcStats::default(), |mut acc, s| {
            acc.objects_copied += s.objects_copied;
            acc.words_copied += s.words_copied;
            acc.promoted_objects += s.promoted_objects;
            acc.promoted_words += s.promoted_words;
            acc.remembered_processed += s.remembered_processed;
            acc.remembered_added += s.remembered_added;
            acc.roots += s.roots;
            acc.roots_killed += s.roots_killed;
            acc.float_words_avoided += s.float_words_avoided;
            acc.derived_updated += s.derived_updated;
            acc.frames_traced += s.frames_traced;
            acc.frames_spliced += s.frames_spliced;
            acc.decode_hits += s.decode_hits;
            acc.decode_misses += s.decode_misses;
            acc.decode_ops += s.decode_ops;
            acc.trace_time += s.trace_time;
            acc.total_time += s.total_time;
            acc
        });
        Ok(ExecOutcome {
            output: self.machine.output.clone(),
            collections: self.gc_each.len() as u64,
            minor_collections: self.gc_each.iter().filter(|s| s.kind == GcKind::Minor).count()
                as u64,
            major_collections: self.gc_each.iter().filter(|s| s.kind == GcKind::Major).count()
                as u64,
            gc_total,
            gc_each: self.gc_each.clone(),
            barrier: self.machine.barrier,
            remembered_len: self.machine.remembered_len(),
            steps: self.machine.steps,
        })
    }
}
