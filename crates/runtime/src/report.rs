//! One schema for run statistics: the `--stats` text lines and the
//! benchmark `BENCH_*.json` files are rendered from the same
//! [`StatsReport`], so a counter cannot appear in one and drift from
//! the other.
//!
//! A report is an ordered list of `(json_key, value)` entries plus the
//! `--- …` display lines. The canonical `add_*` methods append both at
//! once, reproducing the historical `--stats` line formats exactly
//! (tools parse those lines positionally); ad-hoc keys can be added
//! with [`StatsReport::put`] and ad-hoc lines with
//! [`StatsReport::line`].

use std::fmt::Write as _;
use std::time::Duration;

use crate::collector::GcStats;
use crate::parallel::ParGcStats;
use crate::serve::{ServeConfigView, ServeStats};

/// A JSON-renderable statistic value.
#[derive(Debug, Clone, PartialEq)]
pub enum StatValue {
    /// Unsigned counter.
    U64(u64),
    /// Signed value.
    I64(i64),
    /// Rate or ratio. Non-finite values render as `0`.
    F64(f64),
    /// Flag.
    Bool(bool),
    /// Text (JSON-escaped on render).
    Str(String),
    /// Array of counters (per-worker breakdowns).
    Arr(Vec<u64>),
    /// Pre-rendered JSON fragment (nested arrays or objects), emitted
    /// verbatim — the caller is responsible for its validity.
    Raw(String),
}

impl From<u64> for StatValue {
    fn from(v: u64) -> StatValue {
        StatValue::U64(v)
    }
}
impl From<usize> for StatValue {
    fn from(v: usize) -> StatValue {
        StatValue::U64(v as u64)
    }
}
impl From<u32> for StatValue {
    fn from(v: u32) -> StatValue {
        StatValue::U64(u64::from(v))
    }
}
impl From<i64> for StatValue {
    fn from(v: i64) -> StatValue {
        StatValue::I64(v)
    }
}
impl From<f64> for StatValue {
    fn from(v: f64) -> StatValue {
        StatValue::F64(v)
    }
}
impl From<bool> for StatValue {
    fn from(v: bool) -> StatValue {
        StatValue::Bool(v)
    }
}
impl From<&str> for StatValue {
    fn from(v: &str) -> StatValue {
        StatValue::Str(v.to_string())
    }
}
impl From<String> for StatValue {
    fn from(v: String) -> StatValue {
        StatValue::Str(v)
    }
}
impl From<Vec<u64>> for StatValue {
    fn from(v: Vec<u64>) -> StatValue {
        StatValue::Arr(v)
    }
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl StatValue {
    fn render_json(&self, out: &mut String) {
        match self {
            StatValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            StatValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            StatValue::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push('0');
                }
            }
            StatValue::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            StatValue::Str(s) => {
                out.push('"');
                escape_json(s, out);
                out.push('"');
            }
            StatValue::Arr(vs) => {
                out.push('[');
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{v}");
                }
                out.push(']');
            }
            StatValue::Raw(json) => out.push_str(json),
        }
    }
}

/// An ordered, named collection of statistics with synchronized text
/// and JSON renderings.
#[derive(Debug, Clone, Default)]
pub struct StatsReport {
    name: String,
    entries: Vec<(String, StatValue)>,
    lines: Vec<String>,
}

impl StatsReport {
    /// An empty report named `name` (rendered as the `"bench"` key).
    #[must_use]
    pub fn new(name: impl Into<String>) -> StatsReport {
        StatsReport { name: name.into(), entries: Vec::new(), lines: Vec::new() }
    }

    /// Appends (or overwrites) a JSON entry without a display line.
    pub fn put(&mut self, key: impl Into<String>, value: impl Into<StatValue>) -> &mut Self {
        let key = key.into();
        let value = value.into();
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            e.1 = value;
        } else {
            self.entries.push((key, value));
        }
        self
    }

    /// Appends a pre-rendered JSON fragment (a nested array or object)
    /// under `key`.
    pub fn put_raw(&mut self, key: impl Into<String>, json: impl Into<String>) -> &mut Self {
        self.put(key, StatValue::Raw(json.into()))
    }

    /// Reads back an entry (tests and assertions).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&StatValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Appends a display line (rendered as `--- {text}`).
    pub fn line(&mut self, text: impl Into<String>) -> &mut Self {
        self.lines.push(text.into());
        self
    }

    /// Records the host environment: core count and whether the run's
    /// perf assertions were armed. Every benchmark JSON carries these
    /// so single-core results are not misread as regressions.
    pub fn host(&mut self, cores: usize, assertion_armed: bool) -> &mut Self {
        self.put("cores", cores);
        self.put("assertion_armed", assertion_armed);
        self
    }

    /// The `--stats` text: one `--- …` line each, newline-terminated;
    /// empty when no lines were added.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for l in &self.lines {
            let _ = writeln!(s, "--- {l}");
        }
        s
    }

    /// One stable JSON object: `bench` first, then every entry in
    /// insertion order.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"bench\":\"");
        escape_json(&self.name, &mut s);
        s.push('"');
        for (k, v) in &self.entries {
            s.push(',');
            s.push('"');
            escape_json(k, &mut s);
            s.push_str("\":");
            v.render_json(&mut s);
        }
        s.push('}');
        s
    }

    // --- Canonical sections. Line formats are load-bearing: driver
    // tests (and any scripts scraping `--stats`) parse them by token
    // position. Change a format only with its consumers. ---

    /// `--- N collection(s), N object(s) moved, …` (semispace runs).
    pub fn add_collector_summary(
        &mut self,
        collections: u64,
        total: &GcStats,
        steps: u64,
    ) -> &mut Self {
        self.put("collections", collections);
        self.put("objects_moved", total.objects_copied);
        self.put("frames_traced", total.frames_traced);
        self.put("steps", steps);
        self.line(format!(
            "{} collection(s), {} object(s) moved, {} frame(s) traced, {} step(s)",
            collections, total.objects_copied, total.frames_traced, steps
        ))
    }

    /// `--- decode cache: …`; `total_points` adds the ` of N` suffix.
    pub fn add_decode_cache(
        &mut self,
        hits: u64,
        misses: u64,
        ops: u64,
        total_points: Option<usize>,
    ) -> &mut Self {
        self.put("decode_hits", hits);
        self.put("decode_misses", misses);
        self.put("decode_ops", ops);
        let mut l =
            format!("decode cache: {hits} hit(s), {misses} miss(es), {ops} point(s) decoded");
        if let Some(t) = total_points {
            self.put("gc_points", t);
            let _ = write!(l, " of {t}");
        }
        self.line(l)
    }

    /// `--- generational: …` and `--- barriers: …`.
    pub fn add_generational(
        &mut self,
        minors: u64,
        majors: u64,
        promoted: u64,
        remembered: usize,
        barriers: (u64, u64, u64, u64),
    ) -> &mut Self {
        self.put("minor_collections", minors);
        self.put("major_collections", majors);
        self.put("promoted_objects", promoted);
        self.put("remembered_slots", remembered);
        self.line(format!(
            "generational: {minors} minor, {majors} major, {promoted} object(s) promoted, \
             {remembered} remembered slot(s) live"
        ));
        let (executed, recorded, deduped, filtered) = barriers;
        self.put("barriers_executed", executed);
        self.put("barriers_recorded", recorded);
        self.put("barriers_deduped", deduped);
        self.put("barriers_filtered", filtered);
        self.line(format!(
            "barriers: {executed} executed, {recorded} recorded, {deduped} deduped, \
             {filtered} filtered"
        ))
    }

    /// `--- livemap: K root(s) killed, W float word(s) avoided` — the
    /// liveness-pruned gc-map ledger: how many dead frame slots the
    /// collector nulled, and the direct words of heap those slots
    /// referenced (float the pruned maps stopped retaining).
    pub fn add_livemap(&mut self, roots_killed: u64, float_words_avoided: u64) -> &mut Self {
        self.put("roots_killed", roots_killed);
        self.put("float_words_avoided", float_words_avoided);
        self.line(format!(
            "livemap: {roots_killed} root(s) killed, {float_words_avoided} float word(s) avoided"
        ))
    }

    /// `--- watermark: S frame(s) spliced of T traced (P% hit rate)`.
    pub fn add_watermark(&mut self, spliced: u64, traced: u64) -> &mut Self {
        let pct = if traced == 0 { 0.0 } else { 100.0 * spliced as f64 / traced as f64 };
        self.put("frames_spliced", spliced);
        self.put("wm_frames_traced", traced);
        self.put("splice_ratio", if traced == 0 { 0.0 } else { spliced as f64 / traced as f64 });
        self.line(format!(
            "watermark: {spliced} frame(s) spliced of {traced} traced ({pct:.1}% hit rate)"
        ))
    }

    /// The parallel-runtime section: summary, handshake timing, worker
    /// breakdown, park sites and decode counters from `gc_each`.
    pub fn add_parallel(
        &mut self,
        mutators: usize,
        gc_workers: usize,
        collections: u64,
        steps: u64,
        gc_each: &[ParGcStats],
    ) -> &mut Self {
        let objects: u64 = gc_each.iter().map(|g| g.objects_copied).sum();
        self.put("mutators", mutators);
        self.put("gc_workers", gc_workers);
        self.put("collections", collections);
        self.put("objects_moved", objects);
        self.put("steps", steps);
        self.line(format!(
            "parallel: {mutators} mutator(s), {gc_workers} gc worker(s), {collections} \
             collection(s), {objects} object(s) moved, {steps} step(s)"
        ));

        let n = gc_each.len().max(1) as u32;
        let mean_us = |total: Duration| (total / n).as_micros();
        let handshake_total: Duration = gc_each.iter().map(|g| g.handshake_time).sum();
        let handshake_max = gc_each.iter().map(|g| g.handshake_time).max().unwrap_or_default();
        let copy_total: Duration = gc_each.iter().map(|g| g.copy_time).sum();
        self.put("handshake_mean_us", mean_us(handshake_total) as u64);
        self.put("handshake_max_us", handshake_max.as_micros() as u64);
        self.put("copy_mean_us", mean_us(copy_total) as u64);
        self.line(format!(
            "handshake: mean {} µs, max {} µs; copy phase mean {} µs",
            mean_us(handshake_total),
            handshake_max.as_micros(),
            mean_us(copy_total)
        ));

        let mut per_words = vec![0u64; gc_workers];
        let mut per_steals = vec![0u64; gc_workers];
        for g in gc_each {
            for (w, v) in g.per_worker_words.iter().enumerate() {
                per_words[w] += v;
            }
            for (w, v) in g.steals.iter().enumerate() {
                per_steals[w] += v;
            }
        }
        self.line(format!("workers: copied words {per_words:?}, steals {per_steals:?}"));
        self.put("per_worker_words", per_words);
        self.put("per_worker_steals", per_steals);

        let polls: u64 = gc_each.iter().map(|g| g.parked_at_polls).sum();
        let allocs: u64 = gc_each.iter().map(|g| g.parked_at_allocs).sum();
        self.put("parked_at_polls", polls);
        self.put("parked_at_allocs", allocs);
        self.line(format!("parks: {polls} at loop poll(s), {allocs} at allocation(s)"));

        self.add_decode_cache(
            gc_each.iter().map(|g| g.decode_hits).sum(),
            gc_each.iter().map(|g| g.decode_misses).sum(),
            gc_each.iter().map(|g| g.decode_ops).sum(),
            None,
        )
    }

    /// `--- tlab: …` (parallel runs).
    pub fn add_tlab(&mut self, words: usize, refills: u64, fast: u64, waste: u64) -> &mut Self {
        self.put("tlab_words", words);
        self.put("tlab_refills", refills);
        self.put("tlab_fast_allocs", fast);
        self.put("tlab_waste_words", waste);
        self.line(format!(
            "tlab: {words} word(s) per buffer, {refills} refill(s), {fast} fast alloc(s), \
             {waste} waste word(s)"
        ))
    }

    /// The concurrent-marking section (`--gc cms` runs): per-cycle pause
    /// split, concurrent mark time and the SATB barrier ledger. Entries
    /// in `gc_each` that are not cms cycles (there should be none) are
    /// skipped.
    pub fn add_cms(
        &mut self,
        conc_workers: usize,
        satb_enqueued: u64,
        satb_drained: u64,
        gc_each: &[ParGcStats],
    ) -> &mut Self {
        let cycles: Vec<&ParGcStats> = gc_each.iter().filter(|g| g.cms_cycle).collect();
        let n = cycles.len().max(1) as u32;
        let mean_us = |total: Duration| (total / n).as_micros() as u64;
        let max_us =
            |f: fn(&ParGcStats) -> Duration| cycles.iter().map(|g| f(g)).max().unwrap_or_default();
        let snap_total: Duration = cycles.iter().map(|g| g.snapshot_pause).sum();
        let final_total: Duration = cycles.iter().map(|g| g.total_time).sum();
        let mark_total: Duration = cycles.iter().map(|g| g.mark_concurrent).sum();
        let snap_max = max_us(|g| g.snapshot_pause);
        let final_max = max_us(|g| g.total_time);
        self.put("cms_cycles", cycles.len());
        self.put("conc_workers", conc_workers);
        self.put("cms_snapshot_pause_mean_us", mean_us(snap_total));
        self.put("cms_snapshot_pause_max_us", snap_max.as_micros() as u64);
        self.put("cms_final_pause_mean_us", mean_us(final_total));
        self.put("cms_final_pause_max_us", final_max.as_micros() as u64);
        self.put("cms_mark_concurrent_mean_us", mean_us(mark_total));
        self.put("satb_enqueued", satb_enqueued);
        self.put("satb_drained", satb_drained);
        self.line(format!(
            "cms: {} cycle(s) with {} marker(s), snapshot pause mean {} µs / max {} µs, \
             final pause mean {} µs / max {} µs",
            cycles.len(),
            conc_workers,
            mean_us(snap_total),
            snap_max.as_micros(),
            mean_us(final_total),
            final_max.as_micros()
        ));
        self.line(format!(
            "cms: mark ran {} µs concurrent (mean), satb: {satb_enqueued} enqueue(s), \
             {satb_drained} drained",
            mean_us(mark_total)
        ))
    }

    /// The concurrent-evacuation section: per-cycle select pause and
    /// concurrent copy time, region/object volumes, and the mutator
    /// self-healing counters. Call after [`StatsReport::add_cms`].
    pub fn add_evac(
        &mut self,
        evac_objects: u64,
        evac_words: u64,
        evac_healed_loads: u64,
        evac_healed_stores: u64,
        gc_each: &[ParGcStats],
    ) -> &mut Self {
        let cycles: Vec<&ParGcStats> = gc_each.iter().filter(|g| g.evac_cycle).collect();
        let n = cycles.len().max(1) as u32;
        let mean_us = |total: Duration| (total / n).as_micros() as u64;
        let select_total: Duration = cycles.iter().map(|g| g.evac_select_pause).sum();
        let conc_total: Duration = cycles.iter().map(|g| g.evac_conc_time).sum();
        let final_total: Duration = cycles.iter().map(|g| g.total_time).sum();
        let final_max = cycles.iter().map(|g| g.total_time).max().unwrap_or_default();
        let regions: u64 = cycles.iter().map(|g| g.evac_regions).sum();
        let pinned: u64 = cycles.iter().map(|g| g.evac_pinned).sum();
        self.put("evac_cycles", cycles.len());
        self.put("evac_regions", regions);
        self.put("evac_pinned", pinned);
        self.put("evac_objects", evac_objects);
        self.put("evac_words", evac_words);
        self.put("evac_healed_loads", evac_healed_loads);
        self.put("evac_healed_stores", evac_healed_stores);
        self.put("evac_select_pause_mean_us", mean_us(select_total));
        self.put("evac_conc_copy_mean_us", mean_us(conc_total));
        self.put("evac_final_pause_mean_us", mean_us(final_total));
        self.put("evac_final_pause_max_us", final_max.as_micros() as u64);
        self.line(format!(
            "evac: {} cycle(s) moved {} object(s) / {} word(s) out of {} region(s) \
             ({} pinned)",
            cycles.len(),
            evac_objects,
            evac_words,
            regions,
            pinned
        ));
        self.line(format!(
            "evac: select pause mean {} µs, concurrent copy mean {} µs, final pause \
             mean {} µs / max {} µs",
            mean_us(select_total),
            mean_us(conc_total),
            mean_us(final_total),
            final_max.as_micros()
        ));
        self.line(format!(
            "evac: healed {evac_healed_loads} load(s), {evac_healed_stores} store(s)"
        ))
    }

    /// The allocation-service section: throughput, pauses, latency and
    /// the region ledger.
    pub fn add_serve(&mut self, view: ServeConfigView, s: &ServeStats) -> &mut Self {
        self.put("threads", view.threads);
        self.put("green_slots", view.green_slots);
        self.put("region_words", view.region_words);
        self.put("quantum", view.quantum);
        self.put("requests", s.requests);
        self.put("elapsed_s", s.elapsed.as_secs_f64());
        self.put("requests_per_sec", s.requests_per_sec);
        self.put("allocations", s.allocations);
        self.put("words_allocated", s.words_allocated);
        self.put("alloc_words_per_sec", s.alloc_words_per_sec);
        self.put("steps", s.steps);
        self.line(format!(
            "serve: {} request(s) on {} thread(s) x {} green slot(s), {:.0} req/s, \
             {:.0} alloc word(s)/s, {} step(s)",
            s.requests,
            view.threads,
            view.green_slots,
            s.requests_per_sec,
            s.alloc_words_per_sec,
            s.steps
        ));

        self.put("collections", s.collections);
        self.put("forced_collections", s.forced_collections);
        self.put("pause_p50_us", s.pause_p50_us);
        self.put("pause_p99_us", s.pause_p99_us);
        self.put("pause_max_us", s.pause_max_us);
        self.line(format!(
            "pauses: {} collection(s) ({} forced for zombie reclaim), p50 {} µs, p99 {} µs, \
             max {} µs",
            s.collections, s.forced_collections, s.pause_p50_us, s.pause_p99_us, s.pause_max_us
        ));

        self.put("latency_p50_us", s.latency_p50_us);
        self.put("latency_p99_us", s.latency_p99_us);
        self.put("latency_max_us", s.latency_max_us);
        self.line(format!(
            "latency: p50 {} µs, p99 {} µs, max {} µs",
            s.latency_p50_us, s.latency_p99_us, s.latency_max_us
        ));

        self.put("regions_created", s.regions_created);
        self.put("regions_reclaimed_fast", s.regions_reclaimed_fast);
        self.put("region_words_reclaimed_fast", s.region_words_reclaimed_fast);
        self.put("regions_zombied", s.regions_zombied);
        self.put("region_allocs", s.region_allocs);
        self.put("region_alloc_words", s.region_alloc_words);
        self.put("region_escapes", s.region_escapes);
        self.put("region_words_promoted", s.region_words_promoted);
        self.put("region_words_reset", s.region_words_reset);
        self.put("region_reclaim_ratio", s.region_reclaim_ratio());
        self.line(format!(
            "regions: {} created, {} reclaimed O(1) ({} word(s)), {} zombie(s), \
             {} word(s) promoted, reclaim ratio {:.3}",
            s.regions_created,
            s.regions_reclaimed_fast,
            s.region_words_reclaimed_fast,
            s.regions_zombied,
            s.region_words_promoted,
            s.region_reclaim_ratio()
        ));

        self.put("parked_at_safepoints", s.parked_at_safepoints);
        self.line(format!(
            "safepoints: {} request snapshot(s) traced across collections",
            s.parked_at_safepoints
        ))
    }

    /// The `--jit` section: compilation summary, per-reason fallback
    /// counts and native safepoint polls.
    pub fn add_jit(&mut self, s: &m3gc_jit::JitSummary) -> &mut Self {
        self.put("jit_enabled", s.enabled);
        self.put("jit_procs_total", s.procs_total as u64);
        self.put("jit_procs_compiled", s.procs_compiled as u64);
        self.put("jit_code_bytes", s.code_bytes as u64);
        self.put("jit_compile_ms", s.compile_micros as f64 / 1000.0);
        self.put("jit_native_polls", s.native_polls);
        let mut fb = String::from("{");
        for (i, (reason, n)) in s.fallbacks.iter().enumerate() {
            if i > 0 {
                fb.push(',');
            }
            let _ = write!(fb, "\"{reason}\":{n}");
        }
        fb.push('}');
        self.put_raw("jit_fallbacks", fb);
        self.line(format!(
            "jit: {} of {} proc(s) compiled, {} code byte(s), {:.1} ms compile, \
             {} native poll(s)",
            s.procs_compiled,
            s.procs_total,
            s.code_bytes,
            s.compile_micros as f64 / 1000.0,
            s.native_polls
        ));
        if !s.fallbacks.is_empty() {
            let parts: Vec<String> =
                s.fallbacks.iter().map(|(reason, n)| format!("{reason} {n}")).collect();
            self.line(format!("jit fallbacks: {}", parts.join(", ")));
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_stable_and_escaped() {
        let mut r = StatsReport::new("t");
        r.put("a", 1u64).put("b", true).put("c", "x\"y").put("d", vec![1u64, 2]);
        r.put("a", 2u64); // overwrite keeps position
        assert_eq!(
            r.to_json(),
            "{\"bench\":\"t\",\"a\":2,\"b\":true,\"c\":\"x\\\"y\",\"d\":[1,2]}"
        );
    }

    #[test]
    fn text_lines_render_with_dashes() {
        let mut r = StatsReport::new("t");
        r.line("one").line("two");
        assert_eq!(r.to_text(), "--- one\n--- two\n");
    }

    #[test]
    fn collector_summary_matches_legacy_token_positions() {
        let mut r = StatsReport::new("t");
        let gc = GcStats { objects_copied: 7, frames_traced: 9, ..GcStats::default() };
        r.add_collector_summary(3, &gc, 100);
        r.add_decode_cache(5, 2, 7, Some(11));
        let text = r.to_text();
        let first = text.lines().next().unwrap();
        // "--- 3 collection(s), 7 object(s) moved, ..."
        assert_eq!(first.split_whitespace().nth(1), Some("3"));
        assert_eq!(first.split_whitespace().nth(3), Some("7"));
        let cache = text.lines().nth(1).unwrap();
        // "--- decode cache: 5 hit(s), ..." — hits at token 3.
        assert_eq!(cache.split_whitespace().nth(3), Some("5"));
        assert!(cache.ends_with("of 11"));
    }

    #[test]
    fn host_records_cores_and_assertions() {
        let mut r = StatsReport::new("t");
        r.host(1, false);
        assert_eq!(r.get("cores"), Some(&StatValue::U64(1)));
        assert_eq!(r.get("assertion_armed"), Some(&StatValue::Bool(false)));
        let j = r.to_json();
        assert!(j.contains("\"cores\":1") && j.contains("\"assertion_armed\":false"), "{j}");
    }
}
