//! Stack tracing: from suspended threads to concrete root references.
//!
//! At garbage collection time the first task is to locate the tables for
//! each frame on the stack; return addresses extracted from frames index
//! the pc map (§3). Walking from the innermost frame outward, the tracer
//! maintains, for every hard register, *where that register's value as of
//! this frame actually lives*: in the machine register itself, or in a
//! callee's save area further down the stack (the callee saved it before
//! reusing the register). Ground-table entries resolve against the
//! frame's `FP`/`AP`; derivation entries resolve the same way, and
//! ambiguous derivations read their path variable's current value to
//! select the variant that actually happened (§4).
//!
//! The walk itself is expressed over a [`RootSource`] view so that the
//! same code traces both worlds: the single-threaded [`Machine`] (whose
//! threads are suspended in place) and the parallel machine of
//! `crate::parallel` (whose mutators deposit register snapshots when
//! they park at a safepoint).

use m3gc_core::decode::DecodeCache;
use m3gc_core::derive::{DerivationRecord, Sign};
use m3gc_core::layout::{BaseReg, Location, NUM_HARD_REGS};
use m3gc_vm::machine::{Machine, ThreadStatus, RETURN_SENTINEL};
use m3gc_vm::module::VmModule;

/// A reference to a root: either a memory word or a live machine register
/// of some thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootRef {
    /// A memory word (stack slot, save-area slot, or global).
    Mem(i64),
    /// An actual machine register of a thread (innermost frames only).
    Reg {
        /// Thread index.
        thread: u32,
        /// Register number.
        reg: u8,
    },
}

/// A derivation with every location resolved to a [`RootRef`] and any
/// ambiguity already settled via its path variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedDerivation {
    /// Where the derived value lives.
    pub target: RootRef,
    /// The base references with their signs.
    pub bases: Vec<(RootRef, Sign)>,
}

/// Everything the collector needs from the stacks and registers.
#[derive(Debug, Clone, Default)]
pub struct StackRoots {
    /// Tidy pointer locations, callee-before-caller within each thread.
    pub tidy: Vec<RootRef>,
    /// Derived-value records in un-derive order (callee frames first,
    /// derived before base within a gc-point).
    pub derivations: Vec<ResolvedDerivation>,
    /// Killed slots: frame words whose gc-point lists them as holding a
    /// dead reference (liveness-pruned maps). The collector nulls them
    /// instead of tracing them. Disjoint from `tidy` by construction —
    /// the runtime oracle checks this.
    pub killed: Vec<RootRef>,
    /// Number of frames traced (for the §6.3 per-frame cost figures),
    /// spliced frames included.
    pub frames: usize,
    /// Of `frames`, how many were satisfied from a watermark cache
    /// without decoding or resolving anything.
    pub frames_spliced: usize,
}

/// A read-only view of one machine world, sufficient for a stack walk:
/// memory words, register contents, and the loaded module. The stack
/// walk only ever reads registers of the thread it is walking.
pub trait RootSource {
    /// Reads memory word `addr` (must be in range).
    fn mem_word(&self, addr: i64) -> i64;
    /// Reads register `reg` of thread `thread`.
    fn reg_word(&self, thread: u32, reg: u8) -> i64;
    /// The loaded module.
    fn module(&self) -> &VmModule;
    /// Resolves a frame's return linkage word to a bytecode pc. Plain
    /// interpreter frames store the pc directly; JIT frames store a
    /// biased native return address that the machine's installed
    /// [`CodeMap`](m3gc_vm::CodeMap) maps back to the gc-point pc of
    /// the call. This is the *only* JIT awareness in the collectors:
    /// once resolved, the pc-keyed tables apply unchanged.
    fn resolve_retpc(&self, retpc: i64) -> u32 {
        retpc as u32
    }
}

impl RootSource for Machine {
    fn mem_word(&self, addr: i64) -> i64 {
        self.mem[addr as usize]
    }

    fn reg_word(&self, thread: u32, reg: u8) -> i64 {
        self.threads[thread as usize].regs[reg as usize]
    }

    fn module(&self) -> &VmModule {
        &self.module
    }

    fn resolve_retpc(&self, retpc: i64) -> u32 {
        Machine::resolve_retpc(self, retpc)
    }
}

/// Reads a [`RootRef`] through a [`RootSource`].
#[must_use]
pub fn read_root_in(src: &impl RootSource, r: RootRef) -> i64 {
    match r {
        RootRef::Mem(a) => src.mem_word(a),
        RootRef::Reg { thread, reg } => src.reg_word(thread, reg),
    }
}

/// Reads a [`RootRef`].
#[must_use]
pub fn read_root(m: &Machine, r: RootRef) -> i64 {
    read_root_in(m, r)
}

/// Writes a [`RootRef`].
pub fn write_root(m: &mut Machine, r: RootRef, v: i64) {
    match r {
        RootRef::Mem(a) => m.mem[a as usize] = v,
        RootRef::Reg { thread, reg } => m.threads[thread as usize].regs[reg as usize] = v,
    }
}

/// Per-register location map while unwinding one thread's stack.
type RegLocs = [RootRef; NUM_HARD_REGS];

fn resolve_location(loc: Location, fp: i64, ap: i64, sp: i64, regs: &RegLocs) -> RootRef {
    match loc {
        Location::Reg(r) => regs[r as usize],
        Location::Slot(base, off) => {
            let b = match base {
                BaseReg::Fp => fp,
                BaseReg::Ap => ap,
                BaseReg::Sp => sp,
            };
            RootRef::Mem(b + i64::from(off))
        }
    }
}

/// Decodes one frame's gc-point tables and appends its resolved roots
/// to `out`. Returns `true` if the point carried an *ambiguous*
/// derivation — those re-read a path variable at scan time, so the
/// resolution is control-sensitive and must not be replayed from a
/// watermark cache.
fn scan_frame_into(
    src: &impl RootSource,
    cache: &mut DecodeCache,
    bytes: &[u8],
    tid: u32,
    (pc, fp, ap, sp): (u32, i64, i64, i64),
    reg_locs: &RegLocs,
    out: &mut StackRoots,
) -> bool {
    let point = cache.lookup(bytes, pc).unwrap_or_else(|| {
        panic!(
            "no gc tables for pc {pc} in `{}` (thread {tid})",
            src.module().proc_at(pc).map_or("?", |(_, p)| p.name.as_str())
        )
    });
    for entry in &point.stack_slots {
        let root = resolve_location(Location::Slot(entry.base, entry.offset), fp, ap, sp, reg_locs);
        out.tidy.push(root);
    }
    for r in point.regs.iter() {
        out.tidy.push(reg_locs[r as usize]);
    }
    for entry in &point.killed {
        let root = resolve_location(Location::Slot(entry.base, entry.offset), fp, ap, sp, reg_locs);
        out.killed.push(root);
    }
    let mut ambiguous = false;
    for rec in &point.derivations {
        let target = resolve_location(rec.target(), fp, ap, sp, reg_locs);
        let bases = match rec {
            DerivationRecord::Simple { bases, .. } => bases.clone(),
            DerivationRecord::Ambiguous { path_var, variants, .. } => {
                ambiguous = true;
                let pv = resolve_location(*path_var, fp, ap, sp, reg_locs);
                let which = read_root_in(src, pv);
                let idx = usize::try_from(which)
                    .ok()
                    .filter(|i| *i < variants.len())
                    .unwrap_or_else(|| panic!("path variable out of range: {which}"));
                variants[idx].clone()
            }
        };
        let bases = bases
            .into_iter()
            .map(|(loc, sign)| (resolve_location(loc, fp, ap, sp, reg_locs), sign))
            .collect();
        out.derivations.push(ResolvedDerivation { target, bases });
    }
    ambiguous
}

/// Walks one thread's stack from its suspension point `(pc, fp, ap, sp)`
/// outward, appending roots to `out`. `cache` must be bound to the same
/// module.
///
/// # Panics
///
/// Panics if a frame's pc has no gc-point tables — that would be a
/// compiler bug (a collection at a point the compiler did not describe).
pub fn gather_thread_roots(
    src: &impl RootSource,
    cache: &mut DecodeCache,
    tid: u32,
    (mut pc, mut fp, mut ap, mut sp): (u32, i64, i64, i64),
    out: &mut StackRoots,
) {
    let bytes: &[u8] = &src.module().gc_maps.bytes;
    // Register contents start out in the actual machine registers.
    let mut reg_locs: RegLocs = std::array::from_fn(|r| RootRef::Reg { thread: tid, reg: r as u8 });
    loop {
        out.frames += 1;
        scan_frame_into(src, cache, bytes, tid, (pc, fp, ap, sp), &reg_locs, out);
        // Unwind to the caller: registers saved by this procedure live
        // in its save area, so the caller's view of those registers is
        // those stack slots.
        let (_, meta) = src.module().proc_at(pc).expect("pc within a procedure");
        for &(reg, off) in &meta.save_regs {
            reg_locs[reg as usize] = RootRef::Mem(fp + i64::from(off));
        }
        let retpc = src.mem_word(fp - 3);
        if retpc == RETURN_SENTINEL {
            break;
        }
        // The caller's SP at the time of the call: the arg block plus
        // linkage had been pushed, so its SP was `ap` before pushing.
        sp = ap;
        let old_fp = src.mem_word(fp - 2);
        let old_ap = src.mem_word(fp - 1);
        pc = src.resolve_retpc(retpc);
        fp = old_fp;
        ap = old_ap;
    }
}

/// One frame of a thread's stack as resolved at a previous collection,
/// keyed by its suspension state and guarded by a digest of its linkage
/// words.
///
/// The cached payload is *locations only* ([`RootRef`]s are stack
/// slots, save-area slots or registers — none of which ever move), so a
/// splice never needs relocating: the collector re-reads the values
/// through the locations and forwards them exactly as it would for a
/// freshly scanned frame.
#[derive(Debug, Clone)]
struct CachedFrame {
    /// Suspension pc (for non-innermost frames, the return address the
    /// callee will resume it at).
    pc: u32,
    /// Frame pointer.
    fp: i64,
    /// Argument pointer.
    ap: i64,
    /// Stack pointer at suspension.
    sp: i64,
    /// The three linkage words `[retpc, saved-FP, saved-AP]` at
    /// `fp-3..fp`, read while unwinding out of this frame. If they are
    /// unchanged, the frame was not popped and re-entered differently —
    /// and even a coincidentally identical re-activation resolves to
    /// the identical location set, which is all the cache stores.
    digest: [i64; 3],
    /// The per-register location map on *entry* to this frame (before
    /// its own save-area redirections applied). Splicing requires the
    /// current walk's map to be equal: this is the only way the hot
    /// (rescanned) frames influence the cold suffix's resolutions.
    reg_locs: RegLocs,
    /// Resolved tidy roots of this frame.
    tidy: Vec<RootRef>,
    /// Resolved derivations of this frame.
    derivations: Vec<ResolvedDerivation>,
    /// Resolved killed slots of this frame.
    killed: Vec<RootRef>,
    /// True if the frame's gc-point carries an ambiguous derivation
    /// (path-variable dependent — never replayed, see
    /// [`scan_frame_into`]).
    ambiguous: bool,
}

/// A per-thread watermark cache: the frames scanned at the previous
/// collection, innermost first. The watermark is the innermost cached
/// frame's `fp` (the stack grows upward here, so the paper's "lowest
/// frame pointer scanned" is this machine's *highest*); frames hotter
/// than it are always rescanned, frames at or below it are candidates
/// for splicing.
#[derive(Debug, Clone, Default)]
pub struct StackCache {
    frames: Vec<CachedFrame>,
}

impl StackCache {
    /// Drops every cached frame (the next walk rescans everything).
    pub fn invalidate(&mut self) {
        self.frames.clear();
    }

    /// Number of cached frames.
    #[must_use]
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True if nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

/// Locates the cached suffix that can be spliced at the current frame
/// `(pc, fp, ap, sp)`: the frame must be cached with the identical
/// suspension state and register-location map, and every cached frame
/// from it outward must still have its linkage-word digest intact.
fn find_splice(
    src: &impl RootSource,
    prev: &[CachedFrame],
    (pc, fp, ap, sp): (u32, i64, i64, i64),
    reg_locs: &RegLocs,
) -> Option<usize> {
    // `prev` is innermost-first, so `fp` is strictly decreasing.
    let i = prev.binary_search_by(|f| fp.cmp(&f.fp)).ok()?;
    let f = &prev[i];
    if f.pc != pc || f.ap != ap || f.sp != sp || f.reg_locs != *reg_locs {
        return None;
    }
    for g in &prev[i..] {
        let digest = [src.mem_word(g.fp - 3), src.mem_word(g.fp - 2), src.mem_word(g.fp - 1)];
        if digest != g.digest {
            return None;
        }
    }
    Some(i)
}

/// [`gather_thread_roots`], but incremental: frames at or below the
/// thread's watermark whose digests are intact are *spliced* from
/// `stack_cache` instead of being decoded and resolved again, and the
/// cache is rebuilt to describe the stack as of this walk. The output
/// is bit-identical to a full rescan (asserted on every collection when
/// verification is on — see [`StackWatermarks::verify`]).
///
/// # Panics
///
/// As [`gather_thread_roots`].
pub fn gather_thread_roots_cached(
    src: &impl RootSource,
    cache: &mut DecodeCache,
    tid: u32,
    (mut pc, mut fp, mut ap, mut sp): (u32, i64, i64, i64),
    stack_cache: &mut StackCache,
    out: &mut StackRoots,
) {
    let bytes: &[u8] = &src.module().gc_maps.bytes;
    let prev = std::mem::take(&mut stack_cache.frames);
    let watermark = prev.first().map(|f| f.fp);
    let mut new_frames: Vec<CachedFrame> = Vec::new();
    let mut reg_locs: RegLocs = std::array::from_fn(|r| RootRef::Reg { thread: tid, reg: r as u8 });
    loop {
        if watermark.is_some_and(|wm| fp <= wm) {
            if let Some(i) = find_splice(src, &prev, (pc, fp, ap, sp), &reg_locs) {
                for f in &prev[i..] {
                    out.frames += 1;
                    out.frames_spliced += 1;
                    out.tidy.extend_from_slice(&f.tidy);
                    out.derivations.extend_from_slice(&f.derivations);
                    out.killed.extend_from_slice(&f.killed);
                }
                new_frames.extend_from_slice(&prev[i..]);
                break;
            }
        }
        out.frames += 1;
        let tidy_start = out.tidy.len();
        let deriv_start = out.derivations.len();
        let killed_start = out.killed.len();
        let entry_reg_locs = reg_locs;
        let ambiguous = scan_frame_into(src, cache, bytes, tid, (pc, fp, ap, sp), &reg_locs, out);
        let (_, meta) = src.module().proc_at(pc).expect("pc within a procedure");
        for &(reg, off) in &meta.save_regs {
            reg_locs[reg as usize] = RootRef::Mem(fp + i64::from(off));
        }
        let retpc = src.mem_word(fp - 3);
        let old_fp = src.mem_word(fp - 2);
        let old_ap = src.mem_word(fp - 1);
        new_frames.push(CachedFrame {
            pc,
            fp,
            ap,
            sp,
            digest: [retpc, old_fp, old_ap],
            reg_locs: entry_reg_locs,
            tidy: out.tidy[tidy_start..].to_vec(),
            derivations: out.derivations[deriv_start..].to_vec(),
            killed: out.killed[killed_start..].to_vec(),
            ambiguous,
        });
        if retpc == RETURN_SENTINEL {
            break;
        }
        sp = ap;
        pc = src.resolve_retpc(retpc);
        fp = old_fp;
        ap = old_ap;
    }
    // A splice is a contiguous suffix, so an ambiguous frame poisons
    // everything hotter than it: keep only the frames outside the
    // outermost ambiguous one.
    if let Some(k) = new_frames.iter().rposition(|f| f.ambiguous) {
        new_frames.drain(..=k);
    }
    stack_cache.frames = new_frames;
}

/// Asserts that a cached-splice gather produced exactly what a full
/// rescan would (locations, order and all). `spliced` must be the
/// [`StackRoots`] gathered for this one thread.
///
/// # Panics
///
/// Panics if the spliced roots diverge from the fresh rescan — that is
/// a watermark bug, on par with corrupted gc tables.
pub fn verify_spliced_roots(
    src: &impl RootSource,
    cache: &mut DecodeCache,
    tid: u32,
    regs: (u32, i64, i64, i64),
    spliced: &StackRoots,
) {
    let mut full = StackRoots::default();
    gather_thread_roots(src, cache, tid, regs, &mut full);
    assert!(
        spliced.tidy == full.tidy
            && spliced.derivations == full.derivations
            && spliced.killed == full.killed
            && spliced.frames == full.frames,
        "watermark splice diverged from full rescan for thread {tid}: \
         spliced {} tidy / {} derivations over {} frames, \
         full rescan {} tidy / {} derivations over {} frames",
        spliced.tidy.len(),
        spliced.derivations.len(),
        spliced.frames,
        full.tidy.len(),
        full.derivations.len(),
        full.frames,
    );
}

/// Per-machine watermark state: one [`StackCache`] per thread plus the
/// verification switch.
#[derive(Debug, Clone, Default)]
pub struct StackWatermarks {
    threads: Vec<StackCache>,
    /// When set, every cached walk is shadowed by a full rescan and the
    /// two are asserted bit-identical (the fuzzer and the oracle-armed
    /// paths run with this on).
    pub verify: bool,
}

impl StackWatermarks {
    /// Fresh (cold) watermark state.
    #[must_use]
    pub fn new(verify: bool) -> StackWatermarks {
        StackWatermarks { threads: Vec::new(), verify }
    }

    /// The cache for thread `tid`, growing the table on demand.
    pub fn cache_mut(&mut self, tid: usize) -> &mut StackCache {
        if self.threads.len() <= tid {
            self.threads.resize_with(tid + 1, StackCache::default);
        }
        &mut self.threads[tid]
    }

    /// Drops every thread's cached frames (next collection rescans all).
    pub fn invalidate_all(&mut self) {
        for t in &mut self.threads {
            t.invalidate();
        }
    }
}

/// [`gather_stack_roots`] with watermark splicing: each live thread's
/// walk goes through its [`StackCache`], and (when `wm.verify` is set)
/// is checked against a full rescan.
///
/// # Panics
///
/// As [`gather_stack_roots`], plus on a splice/rescan divergence when
/// verification is on.
#[must_use]
pub fn gather_stack_roots_cached(
    m: &Machine,
    cache: &mut DecodeCache,
    wm: &mut StackWatermarks,
) -> StackRoots {
    cache.bind_module(m.module_token());
    let mut out = StackRoots::default();
    for (tid, t) in m.threads.iter().enumerate() {
        if t.status == ThreadStatus::Finished {
            wm.cache_mut(tid).invalidate();
            continue;
        }
        debug_assert_eq!(
            t.status,
            ThreadStatus::BlockedAtGcPoint,
            "thread {tid} not at a gc-point"
        );
        let regs = (t.pc, t.fp, t.ap, t.sp);
        let mut per = StackRoots::default();
        gather_thread_roots_cached(m, cache, tid as u32, regs, wm.cache_mut(tid), &mut per);
        if wm.verify {
            verify_spliced_roots(m, cache, tid as u32, regs, &per);
        }
        out.tidy.append(&mut per.tidy);
        out.derivations.append(&mut per.derivations);
        out.killed.append(&mut per.killed);
        out.frames += per.frames;
        out.frames_spliced += per.frames_spliced;
    }
    out
}

/// Walks every suspended thread's stack and gathers roots.
///
/// Table lookups go through the [`DecodeCache`]: the first collection
/// pays the sequential decode the *Previous* compression requires, and
/// every later consultation of the same pc is a memo hit (the tables are
/// immutable for the module's lifetime).
///
/// Every thread must be stopped at a gc-point (the scheduler guarantees
/// this before invoking the collector).
///
/// # Panics
///
/// Panics if a frame's pc has no gc-point tables — that would be a
/// compiler bug (a collection at a point the compiler did not describe) —
/// or if the cache was built for a different module.
#[must_use]
pub fn gather_stack_roots(m: &Machine, cache: &mut DecodeCache) -> StackRoots {
    cache.bind_module(m.module_token());
    let mut out = StackRoots::default();
    for (tid, t) in m.threads.iter().enumerate() {
        if t.status == ThreadStatus::Finished {
            continue;
        }
        debug_assert_eq!(
            t.status,
            ThreadStatus::BlockedAtGcPoint,
            "thread {tid} not at a gc-point"
        );
        gather_thread_roots(m, cache, tid as u32, (t.pc, t.fp, t.ap, t.sp), &mut out);
    }
    out
}

/// Gathers the global-area roots.
#[must_use]
pub fn gather_global_roots(m: &Machine) -> Vec<RootRef> {
    m.module
        .global_ptr_roots
        .iter()
        .map(|&off| RootRef::Mem(m.globals_start() as i64 + i64::from(off)))
        .collect()
}

/// Gathers the global-area roots of any [`RootSource`] whose globals
/// start at `globals_start`.
#[must_use]
pub fn gather_global_roots_in(module: &VmModule, globals_start: i64) -> Vec<RootRef> {
    module
        .global_ptr_roots
        .iter()
        .map(|&off| RootRef::Mem(globals_start + i64::from(off)))
        .collect()
}
