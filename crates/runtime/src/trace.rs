//! Stack tracing: from suspended threads to concrete root references.
//!
//! At garbage collection time the first task is to locate the tables for
//! each frame on the stack; return addresses extracted from frames index
//! the pc map (§3). Walking from the innermost frame outward, the tracer
//! maintains, for every hard register, *where that register's value as of
//! this frame actually lives*: in the machine register itself, or in a
//! callee's save area further down the stack (the callee saved it before
//! reusing the register). Ground-table entries resolve against the
//! frame's `FP`/`AP`; derivation entries resolve the same way, and
//! ambiguous derivations read their path variable's current value to
//! select the variant that actually happened (§4).
//!
//! The walk itself is expressed over a [`RootSource`] view so that the
//! same code traces both worlds: the single-threaded [`Machine`] (whose
//! threads are suspended in place) and the parallel machine of
//! `crate::parallel` (whose mutators deposit register snapshots when
//! they park at a safepoint).

use m3gc_core::decode::DecodeCache;
use m3gc_core::derive::{DerivationRecord, Sign};
use m3gc_core::layout::{BaseReg, Location, NUM_HARD_REGS};
use m3gc_vm::machine::{Machine, ThreadStatus, RETURN_SENTINEL};
use m3gc_vm::module::VmModule;

/// A reference to a root: either a memory word or a live machine register
/// of some thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootRef {
    /// A memory word (stack slot, save-area slot, or global).
    Mem(i64),
    /// An actual machine register of a thread (innermost frames only).
    Reg {
        /// Thread index.
        thread: u32,
        /// Register number.
        reg: u8,
    },
}

/// A derivation with every location resolved to a [`RootRef`] and any
/// ambiguity already settled via its path variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedDerivation {
    /// Where the derived value lives.
    pub target: RootRef,
    /// The base references with their signs.
    pub bases: Vec<(RootRef, Sign)>,
}

/// Everything the collector needs from the stacks and registers.
#[derive(Debug, Clone, Default)]
pub struct StackRoots {
    /// Tidy pointer locations, callee-before-caller within each thread.
    pub tidy: Vec<RootRef>,
    /// Derived-value records in un-derive order (callee frames first,
    /// derived before base within a gc-point).
    pub derivations: Vec<ResolvedDerivation>,
    /// Number of frames traced (for the §6.3 per-frame cost figures).
    pub frames: usize,
}

/// A read-only view of one machine world, sufficient for a stack walk:
/// memory words, register contents, and the loaded module. The stack
/// walk only ever reads registers of the thread it is walking.
pub trait RootSource {
    /// Reads memory word `addr` (must be in range).
    fn mem_word(&self, addr: i64) -> i64;
    /// Reads register `reg` of thread `thread`.
    fn reg_word(&self, thread: u32, reg: u8) -> i64;
    /// The loaded module.
    fn module(&self) -> &VmModule;
}

impl RootSource for Machine {
    fn mem_word(&self, addr: i64) -> i64 {
        self.mem[addr as usize]
    }

    fn reg_word(&self, thread: u32, reg: u8) -> i64 {
        self.threads[thread as usize].regs[reg as usize]
    }

    fn module(&self) -> &VmModule {
        &self.module
    }
}

/// Reads a [`RootRef`] through a [`RootSource`].
#[must_use]
pub fn read_root_in(src: &impl RootSource, r: RootRef) -> i64 {
    match r {
        RootRef::Mem(a) => src.mem_word(a),
        RootRef::Reg { thread, reg } => src.reg_word(thread, reg),
    }
}

/// Reads a [`RootRef`].
#[must_use]
pub fn read_root(m: &Machine, r: RootRef) -> i64 {
    read_root_in(m, r)
}

/// Writes a [`RootRef`].
pub fn write_root(m: &mut Machine, r: RootRef, v: i64) {
    match r {
        RootRef::Mem(a) => m.mem[a as usize] = v,
        RootRef::Reg { thread, reg } => m.threads[thread as usize].regs[reg as usize] = v,
    }
}

/// Per-register location map while unwinding one thread's stack.
type RegLocs = [RootRef; NUM_HARD_REGS];

fn resolve_location(loc: Location, fp: i64, ap: i64, sp: i64, regs: &RegLocs) -> RootRef {
    match loc {
        Location::Reg(r) => regs[r as usize],
        Location::Slot(base, off) => {
            let b = match base {
                BaseReg::Fp => fp,
                BaseReg::Ap => ap,
                BaseReg::Sp => sp,
            };
            RootRef::Mem(b + i64::from(off))
        }
    }
}

/// Walks one thread's stack from its suspension point `(pc, fp, ap, sp)`
/// outward, appending roots to `out`. `bytes` must be the module's
/// encoded gc-map stream and `cache` must be bound to the same module.
///
/// # Panics
///
/// Panics if a frame's pc has no gc-point tables — that would be a
/// compiler bug (a collection at a point the compiler did not describe).
pub fn gather_thread_roots(
    src: &impl RootSource,
    cache: &mut DecodeCache,
    tid: u32,
    (mut pc, mut fp, mut ap, mut sp): (u32, i64, i64, i64),
    out: &mut StackRoots,
) {
    let bytes: &[u8] = &src.module().gc_maps.bytes;
    // Register contents start out in the actual machine registers.
    let mut reg_locs: RegLocs = std::array::from_fn(|r| RootRef::Reg { thread: tid, reg: r as u8 });
    loop {
        out.frames += 1;
        let point = cache.lookup(bytes, pc).unwrap_or_else(|| {
            panic!(
                "no gc tables for pc {pc} in `{}` (thread {tid})",
                src.module().proc_at(pc).map_or("?", |(_, p)| p.name.as_str())
            )
        });
        for entry in &point.stack_slots {
            let root =
                resolve_location(Location::Slot(entry.base, entry.offset), fp, ap, sp, &reg_locs);
            out.tidy.push(root);
        }
        for r in point.regs.iter() {
            out.tidy.push(reg_locs[r as usize]);
        }
        for rec in &point.derivations {
            let target = resolve_location(rec.target(), fp, ap, sp, &reg_locs);
            let bases = match rec {
                DerivationRecord::Simple { bases, .. } => bases.clone(),
                DerivationRecord::Ambiguous { path_var, variants, .. } => {
                    let pv = resolve_location(*path_var, fp, ap, sp, &reg_locs);
                    let which = read_root_in(src, pv);
                    let idx = usize::try_from(which)
                        .ok()
                        .filter(|i| *i < variants.len())
                        .unwrap_or_else(|| panic!("path variable out of range: {which}"));
                    variants[idx].clone()
                }
            };
            let bases = bases
                .into_iter()
                .map(|(loc, sign)| (resolve_location(loc, fp, ap, sp, &reg_locs), sign))
                .collect();
            out.derivations.push(ResolvedDerivation { target, bases });
        }
        // Unwind to the caller: registers saved by this procedure live
        // in its save area, so the caller's view of those registers is
        // those stack slots.
        let (_, meta) = src.module().proc_at(pc).expect("pc within a procedure");
        for &(reg, off) in &meta.save_regs {
            reg_locs[reg as usize] = RootRef::Mem(fp + i64::from(off));
        }
        let retpc = src.mem_word(fp - 3);
        if retpc == RETURN_SENTINEL {
            break;
        }
        // The caller's SP at the time of the call: the arg block plus
        // linkage had been pushed, so its SP was `ap` before pushing.
        sp = ap;
        let old_fp = src.mem_word(fp - 2);
        let old_ap = src.mem_word(fp - 1);
        pc = retpc as u32;
        fp = old_fp;
        ap = old_ap;
    }
}

/// Walks every suspended thread's stack and gathers roots.
///
/// Table lookups go through the [`DecodeCache`]: the first collection
/// pays the sequential decode the *Previous* compression requires, and
/// every later consultation of the same pc is a memo hit (the tables are
/// immutable for the module's lifetime).
///
/// Every thread must be stopped at a gc-point (the scheduler guarantees
/// this before invoking the collector).
///
/// # Panics
///
/// Panics if a frame's pc has no gc-point tables — that would be a
/// compiler bug (a collection at a point the compiler did not describe) —
/// or if the cache was built for a different module.
#[must_use]
pub fn gather_stack_roots(m: &Machine, cache: &mut DecodeCache) -> StackRoots {
    cache.bind_module(m.module_token());
    let mut out = StackRoots::default();
    for (tid, t) in m.threads.iter().enumerate() {
        if t.status == ThreadStatus::Finished {
            continue;
        }
        debug_assert_eq!(
            t.status,
            ThreadStatus::BlockedAtGcPoint,
            "thread {tid} not at a gc-point"
        );
        gather_thread_roots(m, cache, tid as u32, (t.pc, t.fp, t.ap, t.sp), &mut out);
    }
    out
}

/// Gathers the global-area roots.
#[must_use]
pub fn gather_global_roots(m: &Machine) -> Vec<RootRef> {
    m.module
        .global_ptr_roots
        .iter()
        .map(|&off| RootRef::Mem(m.globals_start() as i64 + i64::from(off)))
        .collect()
}

/// Gathers the global-area roots of any [`RootSource`] whose globals
/// start at `globals_start`.
#[must_use]
pub fn gather_global_roots_in(module: &VmModule, globals_start: i64) -> Vec<RootRef> {
    module
        .global_ptr_roots
        .iter()
        .map(|&off| RootRef::Mem(globals_start + i64::from(off)))
        .collect()
}
