//! The shared parallel-evacuation core: claim-and-copy forwarding with
//! work stealing, used by every stop-the-world collection of the
//! OS-thread runtime (plain parallel runs and the allocation-service
//! executor alike).
//!
//! Extracted from `parallel.rs` so the serve executor's region-aware
//! collections reuse the exact copy path instead of growing a second
//! one. The generalisation over the original semispace-only code is the
//! *evacuation source set*: besides the from-space, a collection may
//! evacuate **escaped per-request regions** (live or zombie — see
//! `m3gc_vm::par::ParMachine::is_region_escaped`). Reachable objects in
//! those regions are promoted into to-space (the shared heap), every
//! surviving reference is rewritten, and the region is then reset —
//! which is how "only escaping objects are promoted; everything else is
//! reclaimed with the region in O(1)" stays sound: after the trace, no
//! pointer into the reset region can remain, and the precision oracle's
//! stale-pointer trap would catch any the tables missed.
//!
//! Non-escaped **live** regions are not evacuation sources (their
//! objects stay put, keeping request-local data out of the trace), but
//! they are *scanned linearly* — bump allocation makes every region a
//! dense header-led object sequence — so their pointer slots into the
//! evacuation set are forwarded like any other root.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

use m3gc_core::heap::{header_type_id, HeapType};
use m3gc_vm::machine::GLOBAL_BASE;
use m3gc_vm::ParMachine;

/// Relaxed shorthand; cross-thread ordering comes from the handshake
/// and the forwarding CAS protocol.
const R: Ordering = Ordering::Relaxed;

/// Header claim sentinel: a worker that wins the forwarding CAS holds
/// the object under this value until the forwarding pointer is
/// published. Distinguishable from both real headers (`>= 0`) and
/// forwarding pointers (`-(new+1)`, which is negative but far from
/// `i64::MIN` for any real address).
pub(crate) const BUSY: i64 = i64::MIN;

/// Shared state of one collection's copy phase.
pub(crate) struct GcCtx<'vm> {
    pub(crate) vm: &'vm ParMachine,
    /// To-space copy frontier (fetch-add bump).
    pub(crate) free: AtomicI64,
    pub(crate) to_end: i64,
    pub(crate) from_start: i64,
    pub(crate) from_end: i64,
    /// Escaped-region evacuation sources: `(slot, base, top)` of every
    /// region whose data must move to the shared heap this collection.
    pub(crate) evac_regions: Vec<(usize, i64, i64)>,
    /// Live non-escaped region slots awaiting a linear pointer scan;
    /// workers pull from this queue during the root-forwarding phase.
    pub(crate) region_scan: Mutex<Vec<usize>>,
    /// Per-worker deques of to-space objects still to scan.
    pub(crate) queues: Vec<Mutex<VecDeque<i64>>>,
    /// Objects pushed but not yet fully scanned (termination detector).
    pub(crate) pending: AtomicUsize,
    pub(crate) steals: Vec<AtomicU64>,
    pub(crate) barrier: Barrier,
}

impl<'vm> GcCtx<'vm> {
    /// Prepares the copy-phase state: semispace bounds, the escaped
    /// regions to evacuate and the live regions to scan in place.
    pub(crate) fn new(vm: &'vm ParMachine, workers: usize) -> GcCtx<'vm> {
        let (from_start, from_end) = vm.from_space();
        let (to_start, to_end) = vm.to_space();
        let mut evac_regions = Vec::new();
        let mut scan = Vec::new();
        if vm.region_words() > 0 {
            for slot in 0..vm.mutators() {
                if vm.is_region_escaped(slot) {
                    let (base, _) = vm.region_bounds(slot);
                    evac_regions.push((slot, base, vm.region_top(slot)));
                } else if vm.is_region_live(slot) {
                    scan.push(slot);
                }
            }
        }
        GcCtx {
            vm,
            free: AtomicI64::new(to_start),
            to_end,
            from_start,
            from_end,
            evac_regions,
            region_scan: Mutex::new(scan),
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            steals: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            barrier: Barrier::new(workers),
        }
    }

    /// True if `v` points into this collection's evacuation set (the
    /// from-space or an escaped region) and must be forwarded.
    pub(crate) fn in_evac(&self, v: i64) -> bool {
        if (self.from_start..self.from_end).contains(&v) {
            return true;
        }
        self.evac_regions.iter().any(|&(_, base, top)| (base..top).contains(&v))
    }
}

/// Per-worker copy counters. Words promoted out of escaped regions are
/// split from ordinary semispace copies so the serve stats can report
/// exactly how much request-local data tracing (rather than O(1)
/// region reclaim) had to handle.
#[derive(Default)]
pub(crate) struct WorkerLocal {
    pub(crate) objects: u64,
    pub(crate) words: u64,
    pub(crate) region_objects: u64,
    pub(crate) region_words: u64,
}

/// Forwards one object pointer, copying the object on first claim.
/// `addr` must point at an object header in the evacuation set. Loser
/// workers spin (yielding) on the BUSY sentinel until the winner
/// publishes the forwarding pointer with release ordering.
pub(crate) fn forward_par(gc: &GcCtx<'_>, w: usize, local: &mut WorkerLocal, addr: i64) -> i64 {
    let vm = gc.vm;
    loop {
        let header = vm.mem[addr as usize].load(Ordering::Acquire);
        if header == BUSY {
            std::thread::yield_now();
            continue;
        }
        if header < 0 {
            // Already forwarded: header holds -(new+1).
            return -(header + 1);
        }
        if vm.mem[addr as usize]
            .compare_exchange(header, BUSY, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            continue;
        }
        // Claimed: the words are exclusively ours until we publish.
        let ty = vm.module.types.get(header_type_id(header));
        let len = match ty {
            HeapType::Array { .. } => vm.word(addr + 1),
            HeapType::Record { .. } => 0,
        };
        let words = i64::from(ty.object_words(len as u32));
        let new = gc.free.fetch_add(words, R);
        assert!(new + words <= gc.to_end, "to-space overflow during parallel copy");
        vm.set_word(new, header);
        for off in 1..words {
            vm.set_word(new + off, vm.word(addr + off));
        }
        if let Some(sh) = &vm.shadow {
            sh.copy_words(addr, new, words);
        }
        if (gc.from_start..gc.from_end).contains(&addr) {
            local.objects += 1;
            local.words += words as u64;
        } else {
            // The only other evacuation sources are escaped regions.
            local.region_objects += 1;
            local.region_words += words as u64;
        }
        if ty.pointer_offset_iter(len as u32).next().is_some() {
            gc.pending.fetch_add(1, Ordering::SeqCst);
            gc.queues[w].lock().unwrap().push_back(new);
        }
        vm.mem[addr as usize].store(-(new + 1), Ordering::Release);
        return new;
    }
}

/// Forwards a root slot if it still holds a pointer into the evacuation
/// set. Duplicate roots (a pointer listed both in a register and its
/// save slot) make forwarding idempotent, exactly as in the
/// single-threaded collector.
pub(crate) fn forward_root_par(
    gc: &GcCtx<'_>,
    w: usize,
    local: &mut WorkerLocal,
    v: i64,
) -> Option<i64> {
    if v == 0 {
        return None; // NIL
    }
    if !gc.in_evac(v) {
        debug_assert!(
            (GLOBAL_BASE as i64..gc.from_end.max(gc.to_end)).contains(&v),
            "tidy root {v} outside every space"
        );
        return None;
    }
    Some(forward_par(gc, w, local, v))
}

/// Scans one to-space object, forwarding its evacuation-set pointer
/// slots.
pub(crate) fn scan_object(gc: &GcCtx<'_>, w: usize, local: &mut WorkerLocal, addr: i64) {
    let vm = gc.vm;
    let header = vm.word(addr);
    debug_assert!(header >= 0, "forwarded header in to-space at {addr}");
    let ty = vm.module.types.get(header_type_id(header));
    let len = match ty {
        HeapType::Array { .. } => vm.word(addr + 1),
        HeapType::Record { .. } => 0,
    };
    for off in ty.pointer_offset_iter(len as u32) {
        let slot = addr + i64::from(off);
        let v = vm.word(slot);
        if v != 0 && gc.in_evac(v) {
            vm.set_word(slot, forward_par(gc, w, local, v));
        }
    }
}

/// Linearly scans one live (non-escaped) region — a dense header-led
/// object sequence by construction of bump allocation — forwarding any
/// pointer slot into the evacuation set. The region's own objects do
/// not move. Returns the roots (pointer slots) processed.
pub(crate) fn scan_region(gc: &GcCtx<'_>, w: usize, local: &mut WorkerLocal, slot: usize) -> u64 {
    let vm = gc.vm;
    let (base, _) = vm.region_bounds(slot);
    let top = vm.region_top(slot);
    let mut addr = base;
    let mut slots_seen = 0u64;
    while addr < top {
        let header = vm.word(addr);
        debug_assert!(header >= 0, "forwarded header inside a live region at {addr}");
        let ty = vm.module.types.get(header_type_id(header));
        let len = match ty {
            HeapType::Array { .. } => vm.word(addr + 1),
            HeapType::Record { .. } => 0,
        };
        for off in ty.pointer_offset_iter(len as u32) {
            let p = addr + i64::from(off);
            let v = vm.word(p);
            slots_seen += 1;
            if v != 0 && gc.in_evac(v) {
                vm.set_word(p, forward_par(gc, w, local, v));
            }
        }
        addr += i64::from(ty.object_words(len as u32));
    }
    slots_seen
}

/// Pops local work LIFO, steals FIFO when dry.
pub(crate) fn next_work(gc: &GcCtx<'_>, w: usize) -> Option<i64> {
    if let Some(a) = gc.queues[w].lock().unwrap().pop_back() {
        return Some(a);
    }
    let n = gc.queues.len();
    for i in 1..n {
        let q = (w + i) % n;
        if let Some(a) = gc.queues[q].lock().unwrap().pop_front() {
            gc.steals[w].fetch_add(1, R);
            return Some(a);
        }
    }
    None
}
