//! The unified runtime configuration: one builder-style options struct
//! for every execution mode.
//!
//! Historically each layer grew its own knob struct (`ExecConfig`,
//! `ParConfig`, `MachineConfig`, `ParMachineConfig`, a driver-private
//! `RunConfig`); [`RuntimeOptions`] subsumed all of them and the
//! deprecated shims have since been removed. CI guards against new
//! per-layer `*Config` structs growing back.
//!
//! ```
//! use m3gc_runtime::{GcStrategy, RuntimeOptions};
//!
//! let opts = RuntimeOptions::new()
//!     .strategy(GcStrategy::Parallel)
//!     .semi_words(1 << 16)
//!     .threads(4)
//!     .gc_workers(2)
//!     .oracle(true);
//! assert_eq!(opts.threads, 4);
//! ```

use m3gc_vm::machine::{HeapStrategy, MachineLayout};
use m3gc_vm::par::ParLayout;
use m3gc_vm::{Machine, ParMachine, VmModule, DEFAULT_TLAB_WORDS};

use crate::scheduler::GcMode;

/// Which collector the runtime drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GcStrategy {
    /// Two semispaces, full-heap collections, simulated threads on one
    /// OS thread (the seed behaviour).
    #[default]
    Semispace,
    /// Nursery + tenured generations with an SSB remembered set.
    Generational,
    /// OS-thread mutators with stop-the-world parallel collection.
    Parallel,
    /// OS-thread mutators with concurrent SATB marking: tracing runs on
    /// dedicated workers while mutators execute, and only evacuation
    /// remains stop-the-world (see `--gc cms`).
    Cms,
}

/// Unified, builder-style runtime configuration.
///
/// Construct with [`RuntimeOptions::new`] and chain the setters; every
/// field is also public for direct access. One struct drives all three
/// execution modes (`m3c run`, `m3c serve`, the fuzz executor and every
/// bench bin); fields irrelevant to the selected [`GcStrategy`] are
/// simply ignored.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeOptions {
    /// Collector / execution strategy.
    pub strategy: GcStrategy,
    /// Words per heap semispace (the tenured generation under
    /// [`GcStrategy::Generational`]).
    pub semi_words: usize,
    /// Words per thread (or green-request) stack.
    pub stack_words: usize,
    /// Maximum simulated threads (sequential strategies).
    pub max_threads: usize,
    /// OS mutator threads ([`GcStrategy::Parallel`]).
    pub threads: usize,
    /// Gc worker threads per stop-the-world collection.
    pub gc_workers: usize,
    /// Concurrent marking workers ([`GcStrategy::Cms`] only).
    pub conc_workers: usize,
    /// Concurrent region evacuation (`--conc-evac`; [`GcStrategy::Cms`]
    /// only): the cset copy overlaps the mutators, leaving only
    /// root/derivation fixup and the in-flight window stop-the-world.
    pub conc_evac: bool,
    /// Words per evacuation region (`None` = the vm default; conc-evac
    /// only). Tiny regions are a torture knob: every region becomes a
    /// cset candidate every cycle.
    pub evac_region_words: Option<usize>,
    /// Words per thread-local allocation buffer (0 disables TLABs).
    pub tlab_words: usize,
    /// Words per nursery half (`None` = a quarter semispace), used by
    /// [`GcStrategy::Generational`].
    pub nursery_words: Option<usize>,
    /// Minor-collection survivals before promotion to tenured space.
    pub promote_age: u32,
    /// Words per per-request region (allocation-service mode; 0 = off).
    pub region_words: usize,
    /// Green-request slots multiplexed over `threads` OS threads
    /// (allocation-service mode).
    pub green_slots: usize,
    /// Instructions per scheduling quantum (sequential scheduler and
    /// the serve executor's green-thread deschedule period).
    pub quantum: u64,
    /// Total instruction budget (per OS thread under
    /// [`GcStrategy::Parallel`]).
    pub fuel: u64,
    /// Max instructions a thread may run while advancing to a gc-point.
    pub max_advance: u64,
    /// Collection behaviour at collection events.
    pub gc_mode: GcMode,
    /// Force a collection event every N allocations (gc-torture; `1`
    /// collects at every allocation).
    pub force_every_allocs: Option<u64>,
    /// Instrument the machine with shadow tags (ground truth for the
    /// precision oracle; implied by `oracle`).
    pub shadow: bool,
    /// Run the gc-map precision oracle before every collection.
    pub oracle: bool,
    /// Baseline-compile procedures to native code at load time
    /// (`--jit`); unsupported hosts or procedures fall back to the
    /// interpreter per-procedure.
    pub jit: bool,
    /// Print gc statistics after the program output.
    pub stats: bool,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            strategy: GcStrategy::Semispace,
            semi_words: 1 << 16,
            stack_words: 1 << 15,
            max_threads: 8,
            threads: 1,
            gc_workers: 4,
            conc_workers: 2,
            conc_evac: false,
            evac_region_words: None,
            tlab_words: DEFAULT_TLAB_WORDS,
            nursery_words: None,
            promote_age: 2,
            region_words: 0,
            green_slots: 0,
            quantum: 10_000,
            fuel: 2_000_000_000,
            max_advance: 1_000_000,
            gc_mode: GcMode::Full,
            force_every_allocs: None,
            shadow: false,
            oracle: false,
            jit: false,
            stats: false,
        }
    }
}

impl RuntimeOptions {
    /// Default options (semispace strategy).
    #[must_use]
    pub fn new() -> RuntimeOptions {
        RuntimeOptions::default()
    }

    /// Selects the collector strategy.
    #[must_use]
    pub fn strategy(mut self, s: GcStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Words per heap semispace.
    #[must_use]
    pub fn semi_words(mut self, words: usize) -> Self {
        self.semi_words = words;
        self
    }

    /// Words per thread (or green-request) stack.
    #[must_use]
    pub fn stack_words(mut self, words: usize) -> Self {
        self.stack_words = words;
        self
    }

    /// Maximum simulated threads (sequential strategies).
    #[must_use]
    pub fn max_threads(mut self, n: usize) -> Self {
        self.max_threads = n;
        self
    }

    /// OS mutator threads (parallel strategy).
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Gc worker threads per collection.
    #[must_use]
    pub fn gc_workers(mut self, n: usize) -> Self {
        self.gc_workers = n;
        self
    }

    /// Concurrent marking workers (cms strategy only).
    #[must_use]
    pub fn conc_workers(mut self, n: usize) -> Self {
        self.conc_workers = n;
        self
    }

    /// Concurrent region evacuation (cms strategy only).
    #[must_use]
    pub fn conc_evac(mut self, on: bool) -> Self {
        self.conc_evac = on;
        self
    }

    /// Words per evacuation region (conc-evac only; tiny values are a
    /// torture knob).
    #[must_use]
    pub fn evac_region_words(mut self, words: usize) -> Self {
        self.evac_region_words = Some(words);
        self
    }

    /// TLAB size in words (0 disables TLABs).
    #[must_use]
    pub fn tlab_words(mut self, words: usize) -> Self {
        self.tlab_words = words;
        self
    }

    /// Nursery half size in words (switches nothing by itself; pair
    /// with [`GcStrategy::Generational`]).
    #[must_use]
    pub fn nursery_words(mut self, words: usize) -> Self {
        self.nursery_words = Some(words);
        self
    }

    /// Sets the survival count at which nursery objects are promoted
    /// (generational strategy only).
    #[must_use]
    pub fn promote_age(mut self, age: u32) -> Self {
        self.promote_age = age;
        self
    }

    /// Allocation-service mode: per-request regions of `words` words
    /// across `slots` green-request slots.
    #[must_use]
    pub fn serve(mut self, words: usize, slots: usize) -> Self {
        self.region_words = words;
        self.green_slots = slots;
        self
    }

    /// Instructions per scheduling quantum.
    #[must_use]
    pub fn quantum(mut self, q: u64) -> Self {
        self.quantum = q;
        self
    }

    /// Total instruction budget.
    #[must_use]
    pub fn fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Max instructions a thread may run while advancing to a gc-point.
    #[must_use]
    pub fn max_advance(mut self, n: u64) -> Self {
        self.max_advance = n;
        self
    }

    /// Collection behaviour at collection events.
    #[must_use]
    pub fn gc_mode(mut self, mode: GcMode) -> Self {
        self.gc_mode = mode;
        self
    }

    /// Gc-torture: collect at every allocation.
    #[must_use]
    pub fn torture(mut self, on: bool) -> Self {
        self.force_every_allocs = if on { Some(1) } else { None };
        self
    }

    /// Force a collection event every `n` allocations.
    #[must_use]
    pub fn force_every_allocs(mut self, n: Option<u64>) -> Self {
        self.force_every_allocs = n;
        self
    }

    /// Shadow instrumentation without the oracle (stale-pointer traps).
    #[must_use]
    pub fn shadow(mut self, on: bool) -> Self {
        self.shadow = on;
        self
    }

    /// Arm the gc-map precision oracle (implies shadow instrumentation).
    #[must_use]
    pub fn oracle(mut self, on: bool) -> Self {
        self.oracle = on;
        if on {
            self.shadow = true;
        }
        self
    }

    /// Baseline-compile procedures to native code at load time.
    #[must_use]
    pub fn jit(mut self, on: bool) -> Self {
        self.jit = on;
        self
    }

    /// Print gc statistics after the program output.
    #[must_use]
    pub fn stats(mut self, on: bool) -> Self {
        self.stats = on;
        self
    }

    /// The heap strategy the sequential machine should use.
    #[must_use]
    pub fn heap_strategy(&self) -> HeapStrategy {
        match self.strategy {
            GcStrategy::Generational => match self.nursery_words {
                Some(n) => {
                    HeapStrategy::Generational { nursery_words: n, promote_age: self.promote_age }
                }
                None => HeapStrategy::generational_for(self.semi_words),
            },
            GcStrategy::Semispace | GcStrategy::Parallel | GcStrategy::Cms => {
                HeapStrategy::Semispace
            }
        }
    }

    /// The sequential machine layout these options describe.
    #[must_use]
    pub fn machine_layout(&self) -> MachineLayout {
        MachineLayout {
            semi_words: self.semi_words,
            stack_words: self.stack_words,
            max_threads: self.max_threads,
            heap: self.heap_strategy(),
        }
    }

    /// The parallel machine layout these options describe. In
    /// allocation-service mode (`region_words > 0`) the mutator slots
    /// are the green-request slots and TLABs are disabled — request
    /// allocation bumps regions instead.
    #[must_use]
    pub fn par_layout(&self) -> ParLayout {
        let serve = self.region_words > 0;
        ParLayout {
            semi_words: self.semi_words,
            stack_words: self.stack_words,
            mutators: if serve { self.green_slots.max(self.threads).max(1) } else { self.threads },
            tlab_words: if serve { 0 } else { self.tlab_words },
            region_words: self.region_words,
        }
    }

    /// Builds a sequential [`Machine`], shadow-instrumented when these
    /// options ask for it.
    #[must_use]
    pub fn build_machine(&self, module: VmModule) -> Machine {
        let mut m = Machine::new(module, self.machine_layout());
        if self.shadow || self.oracle {
            m.enable_shadow();
        }
        m
    }

    /// Builds a shared [`ParMachine`], shadow-instrumented and
    /// cms-enabled when these options ask for it.
    #[must_use]
    pub fn build_par_machine(&self, module: VmModule) -> ParMachine {
        let mut m = ParMachine::new(module, self.par_layout());
        if self.shadow || self.oracle {
            m.enable_shadow();
        }
        if self.strategy == GcStrategy::Cms {
            m.enable_cms();
            if self.conc_evac {
                m.enable_conc_evac(
                    self.evac_region_words.unwrap_or(m3gc_vm::par::DEFAULT_EVAC_REGION_WORDS),
                );
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let o = RuntimeOptions::new()
            .strategy(GcStrategy::Parallel)
            .semi_words(4096)
            .threads(3)
            .gc_workers(2)
            .tlab_words(16)
            .torture(true)
            .oracle(true);
        assert_eq!(o.semi_words, 4096);
        assert_eq!(o.threads, 3);
        assert_eq!(o.force_every_allocs, Some(1));
        assert!(o.shadow, "oracle implies shadow");
        let l = o.par_layout();
        assert_eq!(l.mutators, 3);
        assert_eq!(l.tlab_words, 16);
        assert_eq!(l.region_words, 0);
    }

    #[test]
    fn serve_layout_disables_tlabs() {
        let o = RuntimeOptions::new().strategy(GcStrategy::Parallel).threads(2).serve(256, 8);
        let l = o.par_layout();
        assert_eq!(l.mutators, 8, "slots are green requests in serve mode");
        assert_eq!(l.region_words, 256);
        assert_eq!(l.tlab_words, 0, "regions replace TLABs");
    }

    #[test]
    fn generational_nursery_defaults_to_quarter() {
        let o = RuntimeOptions::new().strategy(GcStrategy::Generational).semi_words(4096);
        match o.heap_strategy() {
            HeapStrategy::Generational { nursery_words, .. } => assert_eq!(nursery_words, 1024),
            HeapStrategy::Semispace => panic!("expected generational"),
        }
    }

    #[test]
    fn cms_strategy_enables_cms_heap() {
        let o = RuntimeOptions::new().strategy(GcStrategy::Cms).conc_workers(3);
        assert_eq!(o.conc_workers, 3);
        assert_eq!(o.heap_strategy(), HeapStrategy::Semispace);
    }
}
