//! The generational copying collector.
//!
//! Builds on the same precise-root machinery as the full semispace
//! collector (`crate::collector`): compiler-emitted tables locate every
//! pointer in stacks, registers and globals, and derived values are
//! updated with the paper's two-step §3 protocol. What changes is the
//! heap: ordinary allocation bumps through a small nursery, and a **minor
//! collection** evacuates only the live nursery objects — the roots are
//! the usual precise set *plus* the remembered set of tenured slots the
//! compiler-emitted write barrier recorded (tenured→nursery stores).
//! Survivors age through the two nursery halves; at `promote_age`
//! survivals they are promoted into the tenured from-space. A **major
//! collection** evacuates nursery and tenured space together into the
//! tenured to-space, emptying the nursery and the remembered set.
//!
//! Ordering with the derived-value update is unchanged from the full
//! collector: un-derive (callee-before-caller, derived-before-base) →
//! evacuate → re-derive in exact reverse order. A derived value whose base
//! is tenured simply re-derives from an unmoved base during minor
//! collections; one whose base is a nursery object follows it to the
//! to-half or tenured space.
//!
//! Soundness of the remembered set rests on two invariants:
//!
//! 1. Slots enter the buffer only when the compiler proved the store was a
//!    pointer store ([`m3gc_vm::isa::Instr::StB`]) or when the type
//!    descriptor lists the slot as a pointer field (eager remembering of
//!    oversized, directly tenured allocations). Every entry is therefore a
//!    tidy pointer slot, and processing is idempotent.
//! 2. The barrier may be *elided* only for stores whose target is provably
//!    nursery-fresh (no gc-point between allocation and store — no
//!    collection can intervene) or provably outside the heap; neither can
//!    create an unrecorded tenured→nursery edge.

use std::time::Instant;

use m3gc_core::decode::DecodeCache;
use m3gc_core::heap::{header_age, header_type_id, header_with_age, HeapType, TypeTable};
use m3gc_core::stats::GcKind;
use m3gc_vm::machine::{Machine, Thread, VmTrap};

use crate::collector::{apply_kills, re_derive, record_decode_work, un_derive, GcStats};
use crate::trace::{
    gather_global_roots, gather_stack_roots, gather_stack_roots_cached, RootRef, StackWatermarks,
};

fn read_ref(mem: &[i64], threads: &[Thread], r: RootRef) -> i64 {
    match r {
        RootRef::Mem(a) => mem[a as usize],
        RootRef::Reg { thread, reg } => threads[thread as usize].regs[reg as usize],
    }
}

fn write_ref(mem: &mut [i64], threads: &mut [Thread], r: RootRef, v: i64) {
    match r {
        RootRef::Mem(a) => mem[a as usize] = v,
        RootRef::Reg { thread, reg } => threads[thread as usize].regs[reg as usize] = v,
    }
}

/// Picks and runs the appropriate generational collection: minor by
/// default, escalating to major when the machine requested one (oversized
/// allocation failure, or no allocation progress after a minor) or when
/// the tenured free space can no longer absorb a worst-case promotion of
/// the whole live nursery.
///
/// # Errors
///
/// Returns [`VmTrap::OutOfMemory`] if a major collection's survivors
/// exceed the tenured semispace. The machine state is not usable
/// afterwards; the program is dead.
pub fn collect(m: &mut Machine, cache: &mut DecodeCache) -> Result<GcStats, VmTrap> {
    collect_with(m, cache, None)
}

/// [`collect`] with a watermark cache: minor collections splice
/// unchanged cold frames from `wm` instead of rescanning them; a major
/// collection rescans everything and invalidates the cache (its copies
/// move tenured referents, and the conservative rule is that only
/// minor/parallel collections trust the watermark).
///
/// # Errors
///
/// As [`collect`].
pub fn collect_with(
    m: &mut Machine,
    cache: &mut DecodeCache,
    wm: Option<&mut StackWatermarks>,
) -> Result<GcStats, VmTrap> {
    if m.wants_major_gc || m.tenured_free() < m.nursery_used() {
        let stats = major_collect(m, cache);
        if let Some(wm) = wm {
            wm.invalidate_all();
        }
        stats
    } else {
        Ok(minor_collect_with(m, cache, wm))
    }
}

/// Evacuation state of a minor collection: two copy destinations (the
/// nursery to-half for young survivors, the tenured frontier for promoted
/// ones) and the aging threshold.
struct MinorSpaces {
    young_from_start: i64,
    young_from_end: i64,
    young_to_start: i64,
    young_to_end: i64,
    young_free: i64,
    tenured_free: i64,
    tenured_limit: i64,
    promote_age: u32,
}

impl MinorSpaces {
    fn in_young_from(&self, v: i64) -> bool {
        (self.young_from_start..self.young_from_end).contains(&v)
    }

    fn in_young_to(&self, v: i64) -> bool {
        (self.young_to_start..self.young_to_end).contains(&v)
    }

    /// Forwards one nursery object, copying on first visit: to the tenured
    /// frontier once its survival count reaches the promotion age, into
    /// the nursery to-half otherwise. Returns the new address.
    fn forward(
        &mut self,
        mem: &mut [i64],
        shadow: &mut Option<Box<m3gc_vm::shadow::Shadow>>,
        types: &TypeTable,
        stats: &mut GcStats,
        addr: i64,
    ) -> i64 {
        let header = mem[addr as usize];
        if header < 0 {
            // Already forwarded: header holds -(new+1).
            return -(header + 1);
        }
        let ty = types.get(header_type_id(header));
        let len = match ty {
            HeapType::Array { .. } => mem[addr as usize + 1],
            HeapType::Record { .. } => 0,
        };
        let words = i64::from(ty.object_words(len as u32));
        let age = header_age(header) + 1;
        let promote = age >= self.promote_age;
        let new = if promote {
            assert!(
                self.tenured_free + words <= self.tenured_limit,
                "promotion overflow despite the headroom precondition"
            );
            let a = self.tenured_free;
            self.tenured_free += words;
            a
        } else {
            let a = self.young_free;
            self.young_free += words;
            a
        };
        mem.copy_within(addr as usize..(addr + words) as usize, new as usize);
        if let Some(sh) = shadow.as_deref_mut() {
            sh.copy_words(addr, new, words);
        }
        mem[new as usize] = header_with_age(header, age);
        mem[addr as usize] = -(new + 1);
        stats.objects_copied += 1;
        stats.words_copied += words as u64;
        if promote {
            stats.promoted_objects += 1;
            stats.promoted_words += words as u64;
        }
        new
    }
}

/// Runs a minor collection. Every non-finished thread must be stopped at
/// a gc-point, and the tenured from-space must have at least
/// `nursery_used()` free words (the scheduler's escalation policy
/// guarantees this worst-case promotion headroom by going major instead).
///
/// # Panics
///
/// Panics if the headroom precondition is violated, or on corrupted heap
/// state / missing tables (compiler/runtime bugs).
pub fn minor_collect(m: &mut Machine, cache: &mut DecodeCache) -> GcStats {
    minor_collect_with(m, cache, None)
}

/// [`minor_collect`] with an optional watermark cache (see
/// [`collect_with`]).
///
/// # Panics
///
/// As [`minor_collect`].
pub fn minor_collect_with(
    m: &mut Machine,
    cache: &mut DecodeCache,
    wm: Option<&mut StackWatermarks>,
) -> GcStats {
    let t0 = Instant::now();
    let mut stats = GcStats { kind: GcKind::Minor, ..GcStats::default() };
    assert!(m.is_generational(), "minor collection on a semispace heap");
    assert!(m.tenured_free() >= m.nursery_used(), "minor collection without promotion headroom");

    // --- Locate tables and walk the stacks (the traced part). ---
    let before = cache.counters();
    let stack = match wm {
        Some(wm) => gather_stack_roots_cached(m, cache, wm),
        None => gather_stack_roots(m, cache),
    };
    let globals = gather_global_roots(m);
    record_decode_work(&mut stats, cache.counters().since(before));
    stats.frames_traced = stack.frames as u64;
    stats.frames_spliced = stack.frames_spliced as u64;
    stats.roots = (stack.tidy.len() + globals.len()) as u64;
    stats.derived_updated = stack.derivations.len() as u64;
    un_derive(m, &stack);
    let trace_end = t0.elapsed();

    // Null the killed slots before evacuating: a dead nursery referent is
    // neither copied nor promoted, and a dead tenured referent becomes
    // unreachable for the next major collection.
    {
        let (ns, _) = m.nursery_from_space();
        let (ts, _) = m.tenured_space();
        let ranges = [(ns, m.alloc_ptr), (ts, m.tenured_alloc_ptr)];
        let (rk, fw) = apply_kills(m, &stack.killed, &ranges);
        stats.roots_killed = rk;
        stats.float_words_avoided = fw;
    }

    // --- Evacuate the live nursery. ---
    let (young_from_start, _) = m.nursery_from_space();
    let (young_to_start, young_to_end) = m.nursery_to_space();
    let mut spaces = MinorSpaces {
        young_from_start,
        // Only the allocated prefix of the active half can hold objects.
        young_from_end: m.alloc_ptr,
        young_to_start,
        young_to_end,
        young_free: young_to_start,
        tenured_free: m.tenured_alloc_ptr,
        tenured_limit: m.tenured_space().1,
        promote_age: m.promote_age(),
    };
    let tenured_scan_start = spaces.tenured_free;
    let remembered = m.take_remembered_slots();
    stats.remembered_processed = remembered.len() as u64;
    // Old→young edges that survive the collection, re-recorded after the
    // flip: remembered slots still pointing at young survivors, plus any
    // young field of a freshly promoted object.
    let mut still_remembered: Vec<i64> = Vec::new();
    let types = m.module.types.clone();

    {
        let Machine { mem, threads, shadow, .. } = m;
        // Precise roots: globals, then stack slots and registers.
        for &r in globals.iter().chain(&stack.tidy) {
            let v = read_ref(mem, threads, r);
            if v == 0 || !spaces.in_young_from(v) {
                // NIL, tenured, or an already-updated duplicate root:
                // nothing to move in a minor collection.
                continue;
            }
            let new = spaces.forward(mem, shadow, &types, &mut stats, v);
            write_ref(mem, threads, r, new);
        }
        // Remembered tenured slots. Values that are no longer nursery
        // pointers (overwritten since the barrier fired) are stale entries
        // and are dropped.
        for &slot in &remembered {
            let v = mem[slot as usize];
            if !spaces.in_young_from(v) {
                continue;
            }
            let new = spaces.forward(mem, shadow, &types, &mut stats, v);
            mem[slot as usize] = new;
            if spaces.in_young_to(new) {
                still_remembered.push(slot);
            }
        }
        // Cheney scan over both destination regions. Young survivors and
        // promoted objects each append to their own frontier, and scanning
        // one region can grow the other, so loop until both catch up.
        let mut young_scan = young_to_start;
        let mut tenured_scan = tenured_scan_start;
        loop {
            let before_y = spaces.young_free;
            let before_t = spaces.tenured_free;
            while young_scan < spaces.young_free {
                young_scan += scan_object(
                    mem,
                    shadow,
                    &types,
                    &mut spaces,
                    &mut stats,
                    young_scan,
                    false,
                    &mut still_remembered,
                );
            }
            while tenured_scan < spaces.tenured_free {
                tenured_scan += scan_object(
                    mem,
                    shadow,
                    &types,
                    &mut spaces,
                    &mut stats,
                    tenured_scan,
                    true,
                    &mut still_remembered,
                );
            }
            if spaces.young_free == before_y && spaces.tenured_free == before_t {
                break;
            }
        }
    }

    // Step 2: re-derive from the relocated bases, in reverse order.
    let t2 = Instant::now();
    re_derive(m, &stack);
    let rederive_time = t2.elapsed();

    m.finish_minor_collection(spaces.young_free, spaces.tenured_free);
    stats.remembered_added = still_remembered.len() as u64;
    for slot in still_remembered {
        m.remember_slot(slot);
    }
    stats.trace_time = trace_end + rederive_time;
    stats.total_time = t0.elapsed();
    stats
}

/// Scans one evacuated object, forwarding its nursery fields; returns the
/// object's size in words. When the object lives in tenured space
/// (`resident_tenured`), fields left pointing at young survivors are
/// recorded as surviving old→young edges.
#[allow(clippy::too_many_arguments)]
fn scan_object(
    mem: &mut [i64],
    shadow: &mut Option<Box<m3gc_vm::shadow::Shadow>>,
    types: &TypeTable,
    spaces: &mut MinorSpaces,
    stats: &mut GcStats,
    addr: i64,
    resident_tenured: bool,
    still_remembered: &mut Vec<i64>,
) -> i64 {
    let header = mem[addr as usize];
    assert!(header >= 0, "forwarded header in a destination region at {addr}");
    let ty = types.get(header_type_id(header));
    let len = match ty {
        HeapType::Array { .. } => mem[addr as usize + 1],
        HeapType::Record { .. } => 0,
    };
    for off in ty.pointer_offset_iter(len as u32) {
        let slot = addr + i64::from(off);
        let v = mem[slot as usize];
        if !spaces.in_young_from(v) || v == 0 {
            continue;
        }
        let new = spaces.forward(mem, shadow, types, stats, v);
        mem[slot as usize] = new;
        if resident_tenured && spaces.in_young_to(new) {
            still_remembered.push(slot);
        }
    }
    i64::from(ty.object_words(len as u32))
}

/// Forwards one object into the tenured to-space during a major
/// collection, copying on first visit. Unlike the semispace collector's
/// version, evacuation can overflow (nursery + tenured survivors may
/// exceed one semispace), so this reports [`VmTrap::OutOfMemory`] instead
/// of trusting the space bound.
fn forward_major(
    mem: &mut [i64],
    shadow: &mut Option<Box<m3gc_vm::shadow::Shadow>>,
    types: &TypeTable,
    free: &mut i64,
    to_end: i64,
    stats: &mut GcStats,
    addr: i64,
) -> Result<i64, VmTrap> {
    let header = mem[addr as usize];
    if header < 0 {
        return Ok(-(header + 1));
    }
    let ty = types.get(header_type_id(header));
    let len = match ty {
        HeapType::Array { .. } => mem[addr as usize + 1],
        HeapType::Record { .. } => 0,
    };
    let words = i64::from(ty.object_words(len as u32));
    if *free + words > to_end {
        return Err(VmTrap::OutOfMemory);
    }
    let new = *free;
    *free += words;
    mem.copy_within(addr as usize..(addr + words) as usize, new as usize);
    if let Some(sh) = shadow.as_deref_mut() {
        sh.copy_words(addr, new, words);
    }
    // Ages only matter inside the nursery; tenured headers stay clean.
    mem[new as usize] = header_with_age(header, 0);
    mem[addr as usize] = -(new + 1);
    stats.objects_copied += 1;
    stats.words_copied += words as u64;
    Ok(new)
}

/// Runs a major collection: evacuates the live nursery *and* the tenured
/// from-space into the tenured to-space (everything is promoted), leaving
/// the nursery empty and the remembered set clear. Every non-finished
/// thread must be stopped at a gc-point.
///
/// # Errors
///
/// Returns [`VmTrap::OutOfMemory`] if the survivors exceed the tenured
/// to-space; the machine state is not usable afterwards.
///
/// # Panics
///
/// Panics on corrupted heap state or missing tables.
pub fn major_collect(m: &mut Machine, cache: &mut DecodeCache) -> Result<GcStats, VmTrap> {
    let t0 = Instant::now();
    let mut stats = GcStats { kind: GcKind::Major, ..GcStats::default() };
    assert!(m.is_generational(), "major collection on a semispace heap");

    let before = cache.counters();
    let stack = gather_stack_roots(m, cache);
    let globals = gather_global_roots(m);
    record_decode_work(&mut stats, cache.counters().since(before));
    stats.frames_traced = stack.frames as u64;
    stats.roots = (stack.tidy.len() + globals.len()) as u64;
    stats.derived_updated = stack.derivations.len() as u64;
    un_derive(m, &stack);
    let trace_end = t0.elapsed();

    {
        let (ns, _) = m.nursery_from_space();
        let (ts, _) = m.tenured_space();
        let ranges = [(ns, m.alloc_ptr), (ts, m.tenured_alloc_ptr)];
        let (rk, fw) = apply_kills(m, &stack.killed, &ranges);
        stats.roots_killed = rk;
        stats.float_words_avoided = fw;
    }

    let (young_start, _) = m.nursery_from_space();
    let young_end = m.alloc_ptr;
    let (old_start, _) = m.tenured_space();
    let old_end = m.tenured_alloc_ptr;
    let (to_start, to_end) = m.tenured_to_space();
    let mut free = to_start;
    let types = m.module.types.clone();
    let in_from =
        |v: i64| (young_start..young_end).contains(&v) || (old_start..old_end).contains(&v);

    {
        let Machine { mem, threads, shadow, .. } = m;
        for &r in globals.iter().chain(&stack.tidy) {
            let v = read_ref(mem, threads, r);
            if v == 0 || !in_from(v) {
                continue;
            }
            let new = forward_major(mem, shadow, &types, &mut free, to_end, &mut stats, v)?;
            write_ref(mem, threads, r, new);
        }
        let mut scan = to_start;
        while scan < free {
            let header = mem[scan as usize];
            assert!(header >= 0, "forwarded header in to-space at {scan}");
            let ty = types.get(header_type_id(header));
            let len = match ty {
                HeapType::Array { .. } => mem[scan as usize + 1],
                HeapType::Record { .. } => 0,
            };
            for off in ty.pointer_offset_iter(len as u32) {
                let slot = scan + i64::from(off);
                let v = mem[slot as usize];
                if v == 0 || !in_from(v) {
                    continue;
                }
                mem[slot as usize] =
                    forward_major(mem, shadow, &types, &mut free, to_end, &mut stats, v)?;
            }
            scan += i64::from(ty.object_words(len as u32));
        }
    }

    let t2 = Instant::now();
    re_derive(m, &stack);
    let rederive_time = t2.elapsed();

    m.finish_major_collection(free);
    stats.trace_time = trace_end + rederive_time;
    stats.total_time = t0.elapsed();
    Ok(stats)
}
