//! The gc-map precision oracle.
//!
//! Confronts the compiler-emitted tables with the dynamic ground truth
//! maintained by the VM's shadow mode (`m3gc_vm::shadow`). Invoked by the
//! scheduler at every collection — *before* any object moves — with every
//! non-finished thread stopped at a gc-point, exactly the state the
//! tables claim to describe.
//!
//! The check catches the "stale extras" half of precision: every decoded
//! entry must be truthful about the frame it describes.
//!
//! * A **tidy root** must be NIL or the address of a live, plausible
//!   object (inside the allocated from-space prefix, non-forwarded
//!   header, known type id) whose shadow tag is `Ptr` — a slot the table
//!   calls a pointer but execution filled with an integer is a lie that
//!   would send the collector chasing a wild address.
//! * A **derivation**'s bases must each be NIL or live `Ptr`-tagged
//!   objects, and its target must carry a pointerish tag — a "derived
//!   value" the instrumented execution never saw pointer arithmetic
//!   produce cannot be un-derived meaningfully.
//!
//! The *other* half — missed pointers (unsoundness) — is detected by the
//! VM itself: under gc-torture every live object moves at every
//! collection, so a pointer the tables omitted keeps its stale from-space
//! value and the next access through it raises
//! [`m3gc_vm::machine::VmTrap::StalePointer`]. A stale value that is
//! never used again is the liveness slack the paper explicitly permits,
//! and passes both checks.

use m3gc_core::decode::DecodeCache;
use m3gc_core::heap::header_type_id;
use m3gc_vm::machine::Machine;
use m3gc_vm::shadow::Tag;

use crate::trace::{
    gather_global_roots, gather_stack_roots, read_root_in, RootRef, RootSource, StackRoots,
};

/// The live (allocated) heap ranges: the from-space prefix for a
/// semispace heap; the nursery prefix plus the tenured prefix for a
/// generational one.
fn live_ranges(m: &Machine) -> [(i64, i64); 2] {
    if m.is_generational() {
        let (ns, _) = m.nursery_from_space();
        let (ts, _) = m.tenured_space();
        [(ns, m.alloc_ptr), (ts, m.tenured_alloc_ptr)]
    } else {
        let (s, _) = m.from_space();
        [(s, m.alloc_ptr), (0, 0)]
    }
}

/// The shadow tag a table entry's location currently carries.
fn root_tag(m: &Machine, r: RootRef) -> Tag {
    let sh = m.shadow.as_deref().expect("oracle requires shadow mode");
    match r {
        RootRef::Mem(a) => sh.mem_tag(a),
        RootRef::Reg { thread, reg } => sh.regs[thread as usize][reg as usize],
    }
}

/// Checks that `v` is the address of a live, plausible object.
/// `forwarded_ok` whitelists values whose forwarded header is a legal
/// transient (a cset original mid-evacuation, healed lazily).
fn check_object(
    src: &impl RootSource,
    ranges: &[(i64, i64)],
    forwarded_ok: &impl Fn(i64) -> bool,
    v: i64,
) -> Result<(), String> {
    if !ranges.iter().any(|&(s, e)| (s..e).contains(&v)) {
        return Err(format!("value {v} is outside the live heap"));
    }
    let header = src.mem_word(v);
    if header < 0 {
        if forwarded_ok(v) {
            return Ok(());
        }
        return Err(format!("value {v} points at a forwarded header"));
    }
    let tid = header_type_id(header);
    if tid.0 as usize >= src.module().types.len() {
        return Err(format!("value {v} has implausible type id {tid}"));
    }
    Ok(())
}

/// The validation core, shared by the single-threaded [`check`] and the
/// parallel runtime's pre-collection check: confronts already-gathered
/// roots with the shadow tags `tag_of` reports.
pub(crate) fn check_entries(
    src: &impl RootSource,
    tag_of: impl Fn(RootRef) -> Tag,
    ranges: &[(i64, i64)],
    forwarded_ok: impl Fn(i64) -> bool,
    stack: &StackRoots,
    globals: &[RootRef],
) -> Result<(), String> {
    for &r in globals.iter().chain(&stack.tidy) {
        let v = read_root_in(src, r);
        if v == 0 {
            continue; // NIL
        }
        check_object(src, ranges, &forwarded_ok, v).map_err(|e| format!("tidy root {r:?}: {e}"))?;
        let tag = tag_of(r);
        if tag != Tag::Ptr {
            return Err(format!("tidy root {r:?} = {v} carries shadow tag {tag:?}, expected Ptr"));
        }
    }

    // Liveness-pruned maps: a killed slot is a claim that the reference is
    // dead, and the collector will null it. A location listed both live
    // and killed at the same collection is a self-contradictory table —
    // the collector would null a root it is also told to trace (this is
    // how an under-aggressive kill, one the liveness analysis should not
    // have produced, is caught deterministically).
    for &k in &stack.killed {
        if stack.tidy.contains(&k) {
            return Err(format!("killed slot {k:?} is also listed as a live tidy root"));
        }
        if let Some(d) = stack.derivations.iter().find(|d| d.bases.iter().any(|&(b, _)| b == k)) {
            return Err(format!(
                "killed slot {k:?} is also a derivation base (target {:?})",
                d.target
            ));
        }
    }

    for d in &stack.derivations {
        for &(b, _sign) in &d.bases {
            let v = read_root_in(src, b);
            if v == 0 {
                continue;
            }
            check_object(src, ranges, &forwarded_ok, v)
                .map_err(|e| format!("derivation base {b:?} (target {:?}): {e}", d.target))?;
            let tag = tag_of(b);
            if tag != Tag::Ptr {
                return Err(format!(
                    "derivation base {b:?} = {v} carries shadow tag {tag:?}, expected Ptr"
                ));
            }
        }
        let tag = tag_of(d.target);
        if !tag.pointerish() {
            return Err(format!(
                "derivation target {:?} carries shadow tag {tag:?}, expected Ptr/Derived",
                d.target
            ));
        }
    }
    Ok(())
}

/// Validates every decoded table entry against the shadow ground truth.
/// Must run with all threads at gc-points and no collection in progress.
///
/// # Errors
///
/// Returns a description of the first table entry that contradicts the
/// instrumented execution.
///
/// # Panics
///
/// Panics if shadow mode is not enabled on the machine.
pub fn check(m: &Machine, cache: &mut DecodeCache) -> Result<(), String> {
    let stack = gather_stack_roots(m, cache);
    let globals = gather_global_roots(m);
    let ranges = live_ranges(m);
    check_entries(m, |r| root_tag(m, r), &ranges, |_| false, &stack, &globals)
}
