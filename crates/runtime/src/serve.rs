//! The allocation-service executor: M cooperative green-thread
//! "request" mutators multiplexed over N OS scheduler threads.
//!
//! Each request is an ordinary [`Mutator`] bound to one of the
//! machine's region slots: it allocates into its per-request region
//! (O(1) bump, no shared traffic) and is reclaimed in O(1) at request
//! exit when nothing escaped. Only escaping objects are promoted into
//! the shared heap — by the next stop-the-world collection, which
//! treats escaped regions as extra evacuation sources (see
//! [`crate::evac`]). The gc-map precision oracle shadow-verifies the
//! whole arrangement: a reclaimed region is dead space, so any root
//! still pointing into one is a stale-pointer violation.
//!
//! Scheduling is cooperative and safepoint-aligned. A green runs for
//! its quantum and is descheduled only at a loop-poll gc-point, where
//! its register state is describable by the compiler's tables: the
//! deposited [`Snapshot`] sits in the green's `RunCtx` slot, so a
//! collection traces queued requests exactly like parked OS threads —
//! and rewrites their roots in place. The stop-the-world handshake is
//! the parallel runtime's own (`park`/`lead_collection`): `active`
//! counts OS threads, and a scheduler thread with no green in hand
//! joins via [`park_idle`]. When every free slot holds an uncollected
//! zombie region (escaped, awaiting evacuation) and requests are still
//! waiting, a scheduler thread forces a collection with
//! [`lead_collection_idle`] to recycle the slots.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use m3gc_vm::{Mutator, ParMachine, ParStep};

use crate::options::RuntimeOptions;
use crate::parallel::{
    lead_collection_idle, park, park_idle, request_gc, ParGcStats, RunCtx, Snapshot,
    HALT_CHECK_MASK,
};
use crate::scheduler::ExecError;

const R: Ordering = Ordering::Relaxed;

/// Workload shape for a [`ServeExecutor`] run.
#[derive(Debug, Clone, Default)]
pub struct ServeLoad {
    /// Total requests to serve.
    pub requests: u64,
    /// Max new requests one scheduler thread admits per scheduling turn
    /// (arrivals come in bursts of up to this size).
    pub burst: usize,
    /// Handler procedure name; the module's entry procedure when
    /// `None`. A handler taking one argument receives the request id.
    pub entry: Option<String>,
}

/// View of the effective serve configuration, reported alongside the
/// stats so benchmark JSON records what actually ran.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfigView {
    /// OS scheduler threads.
    pub threads: usize,
    /// Green request slots (= region slots = snapshot slots).
    pub green_slots: usize,
    /// Words per request region.
    pub region_words: usize,
    /// Scheduling quantum in instructions.
    pub quantum: u64,
}

/// Aggregate statistics of one serve run.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Requests completed.
    pub requests: u64,
    /// Wall-clock run time.
    pub elapsed: Duration,
    /// Completed requests per second.
    pub requests_per_sec: f64,
    /// Objects allocated (all requests, regions included).
    pub allocations: u64,
    /// Words allocated.
    pub words_allocated: u64,
    /// Allocation rate in words per second.
    pub alloc_words_per_sec: f64,
    /// Instructions executed by completed requests.
    pub steps: u64,
    /// Collections performed.
    pub collections: u64,
    /// Of those, collections forced by a scheduler thread to reclaim
    /// zombie region slots (rather than by a full heap).
    pub forced_collections: u64,
    /// Stop-the-world pause percentiles (total collection time), µs.
    pub pause_p50_us: u64,
    /// 99th-percentile pause, µs.
    pub pause_p99_us: u64,
    /// Worst pause, µs.
    pub pause_max_us: u64,
    /// Request latency percentiles (admission to completion), µs.
    pub latency_p50_us: u64,
    /// 99th-percentile latency, µs.
    pub latency_p99_us: u64,
    /// Worst latency, µs.
    pub latency_max_us: u64,
    /// Regions opened (one per request).
    pub regions_created: u64,
    /// Regions reclaimed in O(1) at request exit (nothing escaped).
    pub regions_reclaimed_fast: u64,
    /// Words reclaimed by those O(1) resets.
    pub region_words_reclaimed_fast: u64,
    /// Regions that escaped and became zombies at request exit.
    pub regions_zombied: u64,
    /// Objects allocated inside regions.
    pub region_allocs: u64,
    /// Words allocated inside regions.
    pub region_alloc_words: u64,
    /// Regions marked escaped by the write-barrier escape check.
    pub region_escapes: u64,
    /// Words promoted out of escaped regions by collections.
    pub region_words_promoted: u64,
    /// Words reclaimed by collections resetting escaped regions.
    pub region_words_reset: u64,
    /// Deposited request snapshots traced across all collections
    /// (requests parked at safepoints, queued greens included).
    pub parked_at_safepoints: u64,
}

impl ServeStats {
    /// Fraction of region-allocated words reclaimed *by region reset*
    /// rather than promoted into the shared heap by tracing. The
    /// acceptance bar for the allocation-service design is ≥ 0.9 on a
    /// request-local workload.
    #[must_use]
    pub fn region_reclaim_ratio(&self) -> f64 {
        if self.region_alloc_words == 0 {
            return 1.0;
        }
        let promoted = self.region_words_promoted.min(self.region_alloc_words);
        (self.region_alloc_words - promoted) as f64 / self.region_alloc_words as f64
    }
}

/// Result of a completed serve run.
#[derive(Debug, Clone, Default)]
pub struct ServeOutcome {
    /// Aggregate statistics.
    pub stats: ServeStats,
    /// Per-request outputs, indexed by request id.
    pub outputs: Vec<String>,
    /// Per-collection statistics.
    pub gc_each: Vec<ParGcStats>,
}

/// Sorted-slice percentile (nearest-rank); `0` for an empty slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// A green request: a mutator plus its request bookkeeping.
struct Green {
    mu: Mutator,
    request_id: u64,
    fuel: u64,
    started: Instant,
}

/// State shared by the scheduler threads.
struct ServeShared {
    /// Descheduled runnable greens (their snapshots sit in `ctx.slots`).
    run_queue: Mutex<VecDeque<Green>>,
    /// Region slots with no live request. May still hold zombie regions;
    /// those are skipped until a collection resets them.
    free_slots: Mutex<VecDeque<usize>>,
    /// Requests admitted so far (also the next request id).
    admitted: AtomicU64,
    completed: AtomicU64,
    /// Per-request latency in µs, pushed at completion.
    latencies_us: Mutex<Vec<u64>>,
    outputs: Mutex<Vec<String>>,
    steps: AtomicU64,
    regions_created: AtomicU64,
    regions_reclaimed_fast: AtomicU64,
    region_words_reclaimed_fast: AtomicU64,
    regions_zombied: AtomicU64,
    forced_collections: AtomicU64,
}

enum GreenExit {
    /// Quantum expired at a poll gc-point; snapshot deposited.
    Descheduled,
    /// The request ran to completion.
    Finished,
    /// Shutdown observed mid-request.
    Halted,
}

/// Runs one green until its quantum expires at a describable gc-point,
/// it finishes, or the run shuts down. Mirrors the parallel runtime's
/// `mutator_loop`, with the quantum deschedule added.
fn run_green(ctx: &RunCtx<'_>, g: &mut Green, quantum: u64) -> Result<GreenExit, ExecError> {
    let vm = ctx.vm;
    let mut ran: u64 = 0;
    let mut advance: u64 = 0;
    loop {
        if ran >= quantum && vm.is_poll_pc(g.mu.pc) && !vm.gc_request.load(R) {
            // Deschedule here: a loop-poll pc has full gc tables, so the
            // deposited snapshot is traceable while the green is queued.
            vm.retire_tlab(&mut g.mu);
            *ctx.slots[g.mu.tid].lock().unwrap() = Some(Snapshot::of(&g.mu));
            return Ok(GreenExit::Descheduled);
        }
        match vm.step(&mut g.mu) {
            ParStep::Normal => {
                if g.fuel == 0 {
                    return Err(ExecError::OutOfFuel);
                }
                g.fuel -= 1;
                ran += 1;
                if g.mu.steps & HALT_CHECK_MASK == 0 && ctx.coord.halt.load(Ordering::Acquire) {
                    return Ok(GreenExit::Halted);
                }
                if vm.gc_request.load(R) {
                    advance += 1;
                    if advance > ctx.options.max_advance {
                        let thread = g.mu.tid;
                        return Err(ExecError::StuckThread { thread });
                    }
                } else {
                    advance = 0;
                }
            }
            ParStep::AtSafepoint => {
                advance = 0;
                if !park(ctx, &mut g.mu) {
                    return Ok(GreenExit::Halted);
                }
            }
            ParStep::NeedGc => {
                advance = 0;
                if !request_gc(ctx, &mut g.mu)? {
                    return Ok(GreenExit::Halted);
                }
            }
            ParStep::Finished => return Ok(GreenExit::Finished),
            ParStep::Trap(t) => return Err(ExecError::Trap(t)),
        }
    }
}

/// Admits one request if ids remain and a non-zombie slot is free.
fn admit_one(
    ctx: &RunCtx<'_>,
    shared: &ServeShared,
    load: &ServeLoad,
    entry: u16,
    entry_takes_id: bool,
) -> Option<Green> {
    let slot = {
        let mut free = shared.free_slots.lock().unwrap();
        let n = free.len();
        let mut found = None;
        for _ in 0..n {
            let s = free.pop_front().expect("free-slot count");
            if ctx.vm.is_region_zombie(s) {
                free.push_back(s);
            } else {
                found = Some(s);
                break;
            }
        }
        found?
    };
    // Reserve a request id; hand the slot back if the load is drained.
    let id = loop {
        let id = shared.admitted.load(R);
        if id >= load.requests {
            shared.free_slots.lock().unwrap().push_back(slot);
            return None;
        }
        if shared.admitted.compare_exchange(id, id + 1, R, R).is_ok() {
            break id;
        }
    };
    let args: &[i64] = if entry_takes_id { &[id as i64] } else { &[] };
    let mu = ctx.vm.spawn_mutator(slot, entry, args);
    ctx.vm.begin_region(slot);
    shared.regions_created.fetch_add(1, R);
    Some(Green { mu, request_id: id, fuel: ctx.options.fuel, started: Instant::now() })
}

/// Retires a finished green: close its region (O(1) reclaim or zombie),
/// free the slot, record latency and output.
fn finish_green(ctx: &RunCtx<'_>, shared: &ServeShared, mut g: Green) {
    let vm = ctx.vm;
    vm.retire_tlab(&mut g.mu); // flush pending allocation counters
    shared.steps.fetch_add(g.mu.steps, R);
    let slot = g.mu.tid;
    match vm.end_region(slot) {
        Some(words) => {
            shared.regions_reclaimed_fast.fetch_add(1, R);
            shared.region_words_reclaimed_fast.fetch_add(words as u64, R);
        }
        None => {
            shared.regions_zombied.fetch_add(1, R);
        }
    }
    shared.free_slots.lock().unwrap().push_back(slot);
    let us = u64::try_from(g.started.elapsed().as_micros()).unwrap_or(u64::MAX);
    shared.latencies_us.lock().unwrap().push(us);
    shared.outputs.lock().unwrap()[g.request_id as usize] = g.mu.output;
    shared.completed.fetch_add(1, R);
}

/// True when requests are still waiting but every free slot holds an
/// uncollected zombie region — only a collection can make progress.
fn starved_by_zombies(ctx: &RunCtx<'_>, shared: &ServeShared, load: &ServeLoad) -> bool {
    if shared.admitted.load(R) >= load.requests {
        return false;
    }
    let free = shared.free_slots.lock().unwrap();
    !free.is_empty() && free.iter().all(|&s| ctx.vm.is_region_zombie(s))
}

/// One OS scheduler thread: resume queued greens, admit bursts of new
/// requests, join handshakes, and force collections on zombie
/// starvation, until the load is drained or the run halts.
fn scheduler_loop(
    ctx: &RunCtx<'_>,
    shared: &ServeShared,
    load: &ServeLoad,
    entry: u16,
    entry_takes_id: bool,
) -> Result<(), ExecError> {
    loop {
        if ctx.coord.halt.load(Ordering::Acquire) {
            return Ok(());
        }
        // Join any pending handshake before taking new work: the leader
        // is waiting on this thread.
        if ctx.vm.gc_request.load(R) {
            if !park_idle(ctx) {
                return Ok(());
            }
            continue;
        }
        // Prefer resuming a queued green over admitting a new request.
        let queued = shared.run_queue.lock().unwrap().pop_front();
        if let Some(mut g) = queued {
            // Reload the snapshot: a collection while queued rewrote it.
            if let Some(snap) = ctx.slots[g.mu.tid].lock().unwrap().take() {
                snap.restore(&mut g.mu);
            }
            match run_green(ctx, &mut g, ctx.options.quantum)? {
                GreenExit::Descheduled => shared.run_queue.lock().unwrap().push_back(g),
                GreenExit::Finished => finish_green(ctx, shared, g),
                GreenExit::Halted => return Ok(()),
            }
            continue;
        }
        // Admit a burst of new requests.
        let mut admitted = 0usize;
        while admitted < load.burst.max(1) {
            match admit_one(ctx, shared, load, entry, entry_takes_id) {
                Some(g) => {
                    shared.run_queue.lock().unwrap().push_back(g);
                    admitted += 1;
                }
                None => break,
            }
        }
        if admitted > 0 {
            continue;
        }
        if shared.completed.load(R) >= load.requests {
            return Ok(());
        }
        if starved_by_zombies(ctx, shared, load) {
            // Every free slot is an uncollected zombie: force a cycle to
            // evacuate and reset them.
            if ctx
                .vm
                .gc_request
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                shared.forced_collections.fetch_add(1, R);
                if !lead_collection_idle(ctx)? {
                    return Ok(());
                }
            } else if !park_idle(ctx) {
                return Ok(());
            }
            continue;
        }
        // Other threads hold the remaining work; let them run.
        std::thread::yield_now();
    }
}

/// The allocation-service executor: a shared region-enabled machine, a
/// runtime configuration and a request load.
pub struct ServeExecutor {
    /// The shared machine (must have `region_words > 0`).
    pub vm: ParMachine,
    /// Runtime configuration.
    pub options: RuntimeOptions,
    /// Workload shape.
    pub load: ServeLoad,
}

impl ServeExecutor {
    /// Wraps a machine and a load.
    #[must_use]
    pub fn new(
        vm: ParMachine,
        options: impl Into<RuntimeOptions>,
        load: ServeLoad,
    ) -> ServeExecutor {
        ServeExecutor { vm, options: options.into(), load }
    }

    /// The effective configuration this executor will run with.
    #[must_use]
    pub fn config_view(&self) -> ServeConfigView {
        ServeConfigView {
            threads: self.options.threads.max(1),
            green_slots: self.vm.mutators(),
            region_words: self.vm.region_words(),
            quantum: self.options.quantum.max(1),
        }
    }

    /// Serves `load.requests` requests and returns the run's outcome.
    ///
    /// # Errors
    ///
    /// The first trap, fuel/advance exhaustion or oracle violation of
    /// any request (other threads are halted at their next check).
    ///
    /// # Panics
    ///
    /// Panics if the machine has no regions (`region_words == 0`), the
    /// handler procedure is unknown, or it takes more than one argument.
    pub fn run(&mut self) -> Result<ServeOutcome, ExecError> {
        assert!(self.vm.region_words() > 0, "serve mode needs per-request regions");
        if let Some(n) = self.options.force_every_allocs {
            self.vm.force_gc_at.store(n.max(1), R);
        }
        let vm = &self.vm;
        let greens = vm.mutators();
        let threads = self.options.threads.max(1);
        let entry = match &self.load.entry {
            None => vm.module.main,
            Some(name) => {
                let idx = vm
                    .module
                    .procs
                    .iter()
                    .position(|p| p.name == *name)
                    .unwrap_or_else(|| panic!("unknown handler procedure `{name}`"));
                u16::try_from(idx).expect("procedure index fits u16")
            }
        };
        let n_args = vm.module.procs[entry as usize].n_args;
        assert!(n_args <= 1, "handler procedure must take 0 or 1 argument");
        let entry_takes_id = n_args == 1;

        let ctx = RunCtx::new(vm, self.options, greens, threads);
        let shared = ServeShared {
            run_queue: Mutex::new(VecDeque::new()),
            free_slots: Mutex::new((0..greens).collect()),
            admitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            latencies_us: Mutex::new(Vec::with_capacity(self.load.requests as usize)),
            outputs: Mutex::new(vec![String::new(); self.load.requests as usize]),
            steps: AtomicU64::new(0),
            regions_created: AtomicU64::new(0),
            regions_reclaimed_fast: AtomicU64::new(0),
            region_words_reclaimed_fast: AtomicU64::new(0),
            regions_zombied: AtomicU64::new(0),
            forced_collections: AtomicU64::new(0),
        };

        let t0 = Instant::now();
        std::thread::scope(|s| {
            let (ctx, shared, load) = (&ctx, &shared, &self.load);
            for _ in 0..threads {
                s.spawn(move || {
                    let res = scheduler_loop(ctx, shared, load, entry, entry_takes_id);
                    let mut st = ctx.coord.state.lock().unwrap();
                    if let Err(e) = res {
                        let mut err = ctx.coord.error.lock().unwrap();
                        if err.is_none() {
                            *err = Some(e);
                        }
                        st.halt = true;
                        ctx.coord.halt.store(true, Ordering::Release);
                    }
                    st.active -= 1;
                    ctx.coord.cv.notify_all();
                });
            }
        });
        let elapsed = t0.elapsed();

        if let Some(e) = ctx.coord.error.lock().unwrap().take() {
            return Err(e);
        }

        let gc_each = ctx.gc_log.into_inner().unwrap();
        let mut pauses: Vec<u64> = gc_each
            .iter()
            .map(|g| u64::try_from(g.total_time.as_micros()).unwrap_or(u64::MAX))
            .collect();
        pauses.sort_unstable();
        let mut lats = shared.latencies_us.into_inner().unwrap();
        lats.sort_unstable();
        let secs = elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
        let completed = shared.completed.load(R);
        let words_allocated = vm.words_allocated.load(R);

        let stats = ServeStats {
            requests: completed,
            elapsed,
            requests_per_sec: completed as f64 / secs,
            allocations: vm.allocations.load(R),
            words_allocated,
            alloc_words_per_sec: words_allocated as f64 / secs,
            steps: shared.steps.load(R),
            collections: vm.collections.load(R),
            forced_collections: shared.forced_collections.load(R),
            pause_p50_us: percentile(&pauses, 0.50),
            pause_p99_us: percentile(&pauses, 0.99),
            pause_max_us: pauses.last().copied().unwrap_or(0),
            latency_p50_us: percentile(&lats, 0.50),
            latency_p99_us: percentile(&lats, 0.99),
            latency_max_us: lats.last().copied().unwrap_or(0),
            regions_created: shared.regions_created.load(R),
            regions_reclaimed_fast: shared.regions_reclaimed_fast.load(R),
            region_words_reclaimed_fast: shared.region_words_reclaimed_fast.load(R),
            regions_zombied: shared.regions_zombied.load(R),
            region_allocs: vm.region_allocs.load(R),
            region_alloc_words: vm.region_alloc_words.load(R),
            region_escapes: vm.region_escapes.load(R),
            region_words_promoted: gc_each.iter().map(|g| g.region_words_promoted).sum(),
            region_words_reset: gc_each.iter().map(|g| g.region_words_reset).sum(),
            parked_at_safepoints: gc_each.iter().map(|g| g.stacks_traced).sum(),
        };
        Ok(ServeOutcome { stats, outputs: shared.outputs.into_inner().unwrap(), gc_each })
    }
}
