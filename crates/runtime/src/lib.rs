//! Run-time system: fully compacting garbage collection driven by the
//! compiler-emitted tables.
//!
//! * [`trace`] — the stack walk: return addresses extracted from frames
//!   locate each frame's gc-point tables; register contents are
//!   reconstructed from callee save areas; derivation tables are resolved
//!   to concrete addresses (reading path variables to disambiguate).
//! * [`collector`] — semispace Cheney copying collection with the paper's
//!   two-phase derived-value update: un-derive (recover `E`) before
//!   objects move, visiting callee frames before callers and derived
//!   values before their bases; re-derive afterwards in exactly the
//!   reverse order.
//! * [`scheduler`] — a round-robin executor implementing §5.3's protocol:
//!   when a collection is requested, threads that are not at gc-points
//!   are resumed until they all reach one (loop gc-points bound the
//!   wait), then the collector runs.
//! * [`parallel`] — the same protocol over real OS threads: mutators
//!   poll the request flag at gc-points, park in a stop-the-world
//!   handshake, and `gc_workers` workers evacuate concurrently with a
//!   work-stealing Cheney copy (CAS-claimed forwarding pointers).
//! * [`cms`] — concurrent SATB marking on the parallel runtime: a short
//!   snapshot pause seeds marking from root *values*, `conc_workers`
//!   markers trace while mutators run (the `StB` deletion barrier
//!   preserves the snapshot), and a final pause drains residual SATB
//!   buffers and evacuates the marked set — copy is the only remaining
//!   stop-the-world work.

pub mod cms;
pub mod collector;
mod evac;
pub mod gengc;
pub mod options;
pub mod oracle;
pub mod parallel;
pub mod report;
pub mod scheduler;
pub mod serve;
pub mod trace;

pub use collector::{collect, GcStats};
pub use options::{GcStrategy, RuntimeOptions};
pub use parallel::{ParExecutor, ParGcStats, ParOutcome};
pub use report::StatsReport;
pub use scheduler::{ExecOutcome, Executor, GcMode};
pub use serve::{ServeConfigView, ServeExecutor, ServeLoad, ServeOutcome, ServeStats};

#[cfg(test)]
mod tests;
