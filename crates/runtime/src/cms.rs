//! Concurrent snapshot-at-the-beginning (SATB) marking on the parallel
//! runtime.
//!
//! A `--gc cms` collection cycle replaces the single monolithic
//! stop-the-world pause with two short ones and a concurrent phase in
//! between:
//!
//! 1. **Snapshot pause.** The requesting mutator leads the usual
//!    safepoint handshake, but instead of copying anything it seeds the
//!    mark state: the bitmap is cleared, every root *value* — globals
//!    plus each parked thread's tidy roots, gathered with the
//!    watermark-spliced stack walk — is marked and pushed on the shared
//!    gray stack, `snap_free` records the allocation frontier, and the
//!    `marking` flag arms the `StB` deletion barrier. The world
//!    resumes.
//! 2. **Concurrent mark.** `conc_workers` markers (owned by a
//!    coordinator thread that sleeps between cycles) trace the gray
//!    stack to closure while the mutators keep running. The SATB
//!    invariant keeps this sound: any pointer a mutator overwrites
//!    while marking is enqueued (old value first) into a per-mutator
//!    buffer the markers drain, and every object allocated during
//!    marking is born black — so no object reachable at the snapshot
//!    can be lost, only floating garbage can be retained. When the
//!    markers go quiescent (no gray work, empty SATB sink, nothing in
//!    flight) the coordinator requests the final pause itself rather
//!    than waiting for the heap to fill.
//! 3. **Final pause.** A second handshake stops the world; the leader
//!    waits for the markers to stand down, sequentially drains the
//!    residual gray stack and SATB buffers to closure, and then runs a
//!    *bitmap evacuation*: workers claim fixed-size from-space chunks
//!    with one fetch-add each and copy that chunk's marked objects —
//!    no per-object claim CAS, no work-stealing trace, because the
//!    mark bitmap already is the transitive closure. Root slots and
//!    copied objects' fields are rewritten through plain forwarding
//!    loads after a barrier. The only stop-the-world work left is the
//!    copy itself.
//!
//! With the oracle armed, every cycle is shadow-verified in the final
//! pause before anything moves: a sequential trace from the *current*
//! roots (the exact reachable set a full stop-the-world collection of
//! this pause would copy) asserts that every reachable object carries a
//! mark bit. A deletion barrier that dropped or reordered even one
//! enqueue surfaces as an [`ExecError::Oracle`] here — see the SATB
//! mutation tests.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};
use std::sync::{Barrier, Condvar, Mutex};
use std::time::{Duration, Instant};

use m3gc_core::decode::DecodeCache;
use m3gc_core::heap::{header_type_id, HeapType};
use m3gc_vm::machine::VmTrap;
use m3gc_vm::par::{CmsHeap, EvacFault, EVAC_BUSY};
use m3gc_vm::{Mutator, ParMachine};

use crate::parallel::{
    apply_kills_par, par_oracle_check, re_derive_snap, read_root_snap, un_derive_snap,
    write_root_snap, ParGcStats, Part, RunCtx, Snapshot, ThreadWorld,
};
use crate::scheduler::ExecError;
use crate::trace::{
    gather_global_roots_in, gather_thread_roots, gather_thread_roots_cached, verify_spliced_roots,
    RootRef, StackCache, StackRoots,
};

/// Relaxed shorthand; cross-thread ordering comes from the handshake
/// locks, the marking flag's acquire/release pair and the evacuation
/// barriers.
const R: Ordering = Ordering::Relaxed;

/// Gray-stack objects a marker takes (and keeps locally) per refill.
const MARK_BATCH: usize = 64;

/// From-space words per evacuation chunk (fetch-add claim granularity).
/// A multiple of 64 so bitmap words never straddle chunks.
const CHUNK_WORDS: i64 = 1 << 12;

/// Coordinator/marker state, guarded by [`CmsRun::mx`].
struct CmsState {
    /// Bumped by every snapshot pause; the coordinator runs one marker
    /// generation per increment.
    cycles_started: u64,
    /// True once the current cycle's markers have exited (set by the
    /// coordinator after joining them). The final-pause leader waits on
    /// this before touching the gray stack.
    markers_idle: bool,
    /// True once the current cycle's concurrent copiers have exited
    /// (conc-evac only; trivially true otherwise). The final-pause
    /// leader waits on this before moving anything itself.
    copiers_idle: bool,
    /// Set at end of run; the coordinator exits once no cycle is open.
    stop: bool,
}

/// Per-run concurrent-marking state (lives in `RunCtx`).
pub(crate) struct CmsRun {
    /// Concurrent marking workers per cycle.
    workers: usize,
    mx: Mutex<CmsState>,
    cv: Condvar,
    /// Set by the final-pause leader; markers poll it and stand down.
    finish_requested: AtomicBool,
    /// Shared gray stack of marked-but-unscanned objects.
    gray: Mutex<Vec<i64>>,
    /// Objects pushed gray but not yet fully scanned — the markers'
    /// quiescence detector (0 + empty gray + empty sink = cycle traced).
    in_flight: AtomicUsize,
    /// Stats carried from the snapshot pause to the final pause.
    pending: Mutex<Option<CyclePending>>,
    /// This cycle's evacuation set: region start addresses, sparsest
    /// first, fixed by the select handshake (conc-evac only).
    evac_list: Mutex<Vec<i64>>,
    /// Next unclaimed index into `evac_list` (copier work cursor).
    evac_next: AtomicUsize,
    /// To-space addresses of every copy the concurrent copiers
    /// published this cycle — the updater's and the final pause's
    /// rewrite worklist (to-space has no mark bitmap to iterate).
    evac_copies: Mutex<Vec<i64>>,
    /// Set once the concurrent reference updater has rewritten every
    /// to-space copy's cset references. A final pause that interrupts
    /// the cycle before this point must do that rewrite itself.
    updater_done: AtomicBool,
}

struct CyclePending {
    /// Full duration of the cycle-opening pause.
    snapshot_pause: Duration,
    /// When the world resumed and concurrent marking began.
    mark_started: Instant,
    /// `satb_drained` at cycle start (for the per-cycle delta).
    satb_drained_start: u64,
    /// Killed slots nulled at the snapshot pause (liveness-pruned maps).
    roots_killed: u64,
    /// Words those slots referenced directly (dropped at the *next*
    /// cycle — the snapshot keeps its start-of-cycle heap).
    float_words_avoided: u64,
    /// Duration of the evacuation-select handshake (conc-evac only).
    evac_select_pause: Duration,
    /// When the select handshake released and concurrent copying began.
    evac_started: Option<Instant>,
    /// Regions pinned out of this cycle's cset by frame derivations.
    evac_pinned: u64,
    /// Regions selected into this cycle's cset.
    evac_regions: u64,
    /// `CmsHeap` evacuation counters at the select handshake, for
    /// per-cycle deltas (the heap counters accumulate across cycles).
    evac_objects_start: u64,
    evac_words_start: u64,
    evac_healed_loads_start: u64,
    evac_healed_stores_start: u64,
}

impl CmsRun {
    pub(crate) fn new(workers: usize) -> CmsRun {
        CmsRun {
            workers,
            mx: Mutex::new(CmsState {
                cycles_started: 0,
                markers_idle: true,
                copiers_idle: true,
                stop: false,
            }),
            cv: Condvar::new(),
            finish_requested: AtomicBool::new(false),
            gray: Mutex::new(Vec::new()),
            in_flight: AtomicUsize::new(0),
            pending: Mutex::new(None),
            evac_list: Mutex::new(Vec::new()),
            evac_next: AtomicUsize::new(0),
            evac_copies: Mutex::new(Vec::new()),
            updater_done: AtomicBool::new(false),
        }
    }

    /// End-of-run signal: the coordinator finishes any open cycle and
    /// exits.
    pub(crate) fn stop(&self) {
        let mut cs = self.mx.lock().unwrap();
        cs.stop = true;
        self.cv.notify_all();
    }
}

/// Marks `v` if it is an object address in `[from_start, limit)` and
/// was not marked yet; returns `true` if this call marked it (the
/// caller owns pushing it gray).
fn mark_value(heap: &CmsHeap, from_start: i64, limit: i64, v: i64) -> bool {
    v >= from_start && v < limit && heap.mark_if_unmarked(v)
}

/// Scans one marked object's pointer fields, marking and collecting the
/// unmarked children. Returns how many were pushed.
fn scan_mark(
    vm: &ParMachine,
    heap: &CmsHeap,
    from_start: i64,
    from_end: i64,
    addr: i64,
    out: &mut Vec<i64>,
) -> usize {
    let header = vm.word(addr);
    debug_assert!(header >= 0, "forwarding pointer during marking at {addr}");
    let ty = vm.module.types.get(header_type_id(header));
    let len = match ty {
        HeapType::Array { .. } => vm.word(addr + 1),
        HeapType::Record { .. } => 0,
    };
    let mut pushed = 0;
    for off in ty.pointer_offset_iter(len as u32) {
        let v = vm.word(addr + i64::from(off));
        if mark_value(heap, from_start, from_end, v) {
            out.push(v);
            pushed += 1;
        }
    }
    pushed
}

/// One concurrent marking worker. Runs while the mutators run: pops
/// gray batches, drains the SATB sink when the gray stack is dry, and
/// exits on quiescence, on a final-pause request, or under the
/// `hold_marking` test knob. Field reads race mutator stores by design;
/// every word is an atomic, and a stale read is always safe — the
/// overwritten value the marker missed is exactly what the deletion
/// barrier enqueued.
fn marker_loop(ctx: &RunCtx<'_>) {
    let vm = ctx.vm;
    let heap = vm.cms.as_ref().expect("marker without cms heap");
    let run = ctx.cms.as_ref().expect("marker without cms run");
    let (from_start, from_end) = vm.from_space();
    let mut local: Vec<i64> = Vec::new();
    loop {
        if run.finish_requested.load(Ordering::Acquire) || heap.hold_marking.load(R) {
            break;
        }
        if local.is_empty() {
            let mut gray = run.gray.lock().unwrap();
            let n = gray.len().min(MARK_BATCH);
            if n > 0 {
                let at = gray.len() - n;
                local.extend(gray.drain(at..));
            }
        }
        if local.is_empty() {
            let taken = std::mem::take(&mut *heap.satb_sink.lock().unwrap());
            if !taken.is_empty() {
                heap.satb_drained.fetch_add(taken.len() as u64, R);
                let before = local.len();
                local.extend(
                    taken.into_iter().filter(|&v| mark_value(heap, from_start, from_end, v)),
                );
                run.in_flight.fetch_add(local.len() - before, Ordering::SeqCst);
            }
        }
        let Some(addr) = local.pop() else {
            if run.in_flight.load(Ordering::SeqCst) == 0 {
                // Nothing gray anywhere, the sink was just dry and no
                // marker holds unscanned work: the cycle is quiescent.
                // (SATB entries flushed after our sink check are the
                // final pause's residue — draining them there is the
                // same work, just not concurrent.)
                break;
            }
            std::thread::yield_now();
            continue;
        };
        let pushed = scan_mark(vm, heap, from_start, from_end, addr, &mut local);
        // Count the children in flight before retiring their parent, so
        // `in_flight == 0` still means "fully traced".
        if pushed > 0 {
            run.in_flight.fetch_add(pushed, Ordering::SeqCst);
        }
        run.in_flight.fetch_sub(1, Ordering::SeqCst);
        if local.len() >= 2 * MARK_BATCH {
            // Share the surplus so idle markers can help.
            let at = local.len() - MARK_BATCH;
            run.gray.lock().unwrap().extend(local.drain(at..));
        }
    }
    // Hand any unscanned work back for the final pause (or the other
    // markers); it is already counted in `in_flight`.
    if !local.is_empty() {
        run.gray.lock().unwrap().append(&mut local);
    }
}

/// The coordinator thread: one per cms run, spawned by `run_main`. It
/// sleeps until a snapshot pause opens a cycle, drives that cycle's
/// markers, and — when they quiesce with no pause pending — leads the
/// final pause itself so a traced cycle doesn't float until the heap
/// fills.
pub(crate) fn cms_coordinator(ctx: &RunCtx<'_>) {
    let vm = ctx.vm;
    let heap = vm.cms.as_ref().expect("coordinator without cms heap");
    let run = ctx.cms.as_ref().expect("coordinator without cms run");
    let mut seen = 0u64;
    loop {
        {
            let mut cs = run.mx.lock().unwrap();
            while cs.cycles_started == seen && !cs.stop {
                cs = run.cv.wait(cs).unwrap();
            }
            if cs.cycles_started == seen {
                return; // stopped with no open cycle
            }
            seen = cs.cycles_started;
        }
        std::thread::scope(|s| {
            for _ in 0..run.workers {
                s.spawn(|| marker_loop(ctx));
            }
        });
        {
            let mut cs = run.mx.lock().unwrap();
            cs.markers_idle = true;
            run.cv.notify_all();
        }
        // Quiescent with no final pause pending: finish the cycle now.
        // The CAS makes us the leader exactly like a mutator would be;
        // losing it means a mutator-led pause is already under way.
        //
        // With conc-evac the coordinator leads *two* more handshakes:
        // first the evacuation-select pause (pick the cset, verify the
        // mark closure, pin derivation targets), then — after its
        // copiers have published every cset forwarding and the updater
        // has rewritten the copies' references concurrently — the final
        // pause, which only flushes the in-flight allocation window and
        // re-fixes roots and derivations.
        if heap.marking.load(Ordering::Acquire)
            && !run.finish_requested.load(Ordering::Acquire)
            && !ctx.coord.halt.load(Ordering::Acquire)
            && !heap.hold_marking.load(R)
        {
            if heap.conc_evac.load(R) {
                // The request CAS can transiently fail against the
                // snapshot-pause leader's own release protocol (markers
                // quiesce in microseconds on a small live set, before
                // that leader clears the request), so keep trying until
                // the cycle state itself says stand down — a mutator-led
                // forced pause closing the cycle turns `marking` off.
                loop {
                    if !heap.marking.load(Ordering::Acquire)
                        || heap.evacuating.load(Ordering::Acquire)
                        || run.finish_requested.load(Ordering::Acquire)
                        || ctx.coord.halt.load(Ordering::Acquire)
                        || heap.hold_marking.load(R)
                        || run.mx.lock().unwrap().stop
                    {
                        break;
                    }
                    if vm
                        .gc_request
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        coord_record(ctx, cms_lead_collection_counted(ctx, None, false));
                        break;
                    }
                    std::thread::yield_now();
                }
                if heap.evacuating.load(Ordering::Acquire)
                    && !ctx.coord.halt.load(Ordering::Acquire)
                {
                    std::thread::scope(|s| {
                        for _ in 0..run.workers {
                            s.spawn(|| cms_conc_copier(ctx));
                        }
                    });
                    if !run.finish_requested.load(Ordering::Acquire) {
                        cms_conc_update(ctx);
                    }
                    // Only now may a final-pause leader proceed: the
                    // updater polls `finish_requested` and has stood
                    // down, so nothing races the pause's rewrites.
                    {
                        let mut cs = run.mx.lock().unwrap();
                        cs.copiers_idle = true;
                        run.cv.notify_all();
                    }
                    // Test knob: stand down with every forwarding word
                    // published, so mutators provably run against them.
                    while heap.hold_evac.load(R) && !ctx.coord.halt.load(Ordering::Acquire) {
                        let cs = run.mx.lock().unwrap();
                        if cs.stop {
                            break;
                        }
                        drop(run.cv.wait_timeout(cs, Duration::from_millis(1)).unwrap().0);
                    }
                    // Same transient-failure shape as the select CAS;
                    // `evacuating` turning off means a mutator-led
                    // forced pause already finished the cycle.
                    loop {
                        if heap.hold_evac.load(R)
                            || !heap.evacuating.load(Ordering::Acquire)
                            || run.finish_requested.load(Ordering::Acquire)
                            || ctx.coord.halt.load(Ordering::Acquire)
                            || run.mx.lock().unwrap().stop
                        {
                            break;
                        }
                        if vm
                            .gc_request
                            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                        {
                            coord_record(ctx, cms_lead_collection_counted(ctx, None, false));
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            } else if vm
                .gc_request
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                coord_record(ctx, cms_lead_collection_counted(ctx, None, false));
            }
        }
    }
}

/// Records a coordinator-led pause error. Mutator threads record their
/// own errors on exit; a coordinator-led pause must record here or an
/// oracle violation would vanish with this thread.
fn coord_record(ctx: &RunCtx<'_>, result: Result<bool, ExecError>) {
    if let Err(e) = result {
        let mut st = ctx.coord.state.lock().unwrap();
        let mut err = ctx.coord.error.lock().unwrap();
        if err.is_none() {
            *err = Some(e);
        }
        st.halt = true;
        ctx.coord.halt.store(true, Ordering::Release);
        ctx.coord.cv.notify_all();
    }
}

/// The cms leader path, replacing `lead_collection_with` for cms runs:
/// the same handshake, but the stopped-world work depends on the phase
/// — a snapshot pause if no cycle is open, the final pause otherwise.
pub(crate) fn cms_lead_collection(
    ctx: &RunCtx<'_>,
    mu: Option<&mut Mutator>,
) -> Result<bool, ExecError> {
    // External callers (mutators, serve scheduler threads) are counted
    // in `active` and so stand in for themselves in the handshake.
    cms_lead_collection_counted(ctx, mu, true)
}

/// The handshake + phase dispatch behind [`cms_lead_collection`].
///
/// `counted` says whether the calling thread is itself part of
/// `CoordState::active`: a mutator (or serve scheduler thread) leader
/// contributes `parked += 1` for itself and waits for the *others*; the
/// cms coordinator is not an `active` thread, must not self-count —
/// doing so would let the handshake "complete" with one mutator still
/// running, and the world would not actually be stopped — and instead
/// waits until every active thread has parked.
fn cms_lead_collection_counted(
    ctx: &RunCtx<'_>,
    mut mu: Option<&mut Mutator>,
    counted: bool,
) -> Result<bool, ExecError> {
    let t0 = Instant::now();
    let mut st = ctx.coord.state.lock().unwrap();
    if st.halt {
        ctx.vm.gc_request.store(false, Ordering::Release);
        return Ok(false);
    }
    if let Some(mu) = mu.as_deref_mut() {
        if ctx.vm.is_poll_pc(mu.pc) {
            ctx.poll_parks.fetch_add(1, R);
        } else {
            ctx.alloc_parks.fetch_add(1, R);
        }
        // Exact frontier, flushed counters *and* a flushed SATB buffer
        // before leading (retire_tlab flushes all three).
        ctx.vm.retire_tlab(mu);
        *ctx.slots[mu.tid].lock().unwrap() = Some(Snapshot::of(mu));
    }
    if counted {
        st.parked += 1;
    }
    ctx.coord.cv.notify_all();
    while st.parked < st.active && !st.halt {
        st = ctx.coord.cv.wait(st).unwrap();
    }
    let halted = st.halt;
    let handshake_time = t0.elapsed();
    drop(st);

    let mut result: Result<(), ExecError> = Ok(());
    if !halted {
        let vm = ctx.vm;
        let heap = vm.cms.as_ref().expect("cms lead without cms heap");
        let run = ctx.cms.as_ref().expect("cms lead without cms run");
        let allocs_now = vm.allocations.load(R);
        let torture_due = allocs_now >= vm.force_gc_at.load(R);
        if torture_due {
            if let Some(every) = ctx.options.force_every_allocs {
                vm.force_gc_at.store(allocs_now + every.max(1), R);
            }
        }
        if heap.marking.load(Ordering::Acquire) {
            if heap.conc_evac.load(R)
                && !heap.evacuating.load(Ordering::Acquire)
                && mu.is_none()
                && !run.finish_requested.load(Ordering::Acquire)
            {
                // Coordinator-led handshake at mark quiescence with
                // conc-evac on: pick the evacuation set instead of
                // finishing the cycle. (A *mutator*-led pause here means
                // the heap is full and cannot wait for a concurrent
                // copy; it falls through to the one-pause evacuation.)
                result = cms_evac_select_pause(ctx, heap, run, t0);
            } else {
                let forced = mu.is_none() || torture_due;
                result = cms_final_pause(
                    ctx,
                    heap,
                    run,
                    forced,
                    counted,
                    allocs_now,
                    handshake_time,
                    t0,
                );
            }
        } else if mu.is_some() {
            result = cms_snapshot_pause(ctx, heap, run, t0);
        }
        // mu.is_none() with no cycle open: the coordinator's idle
        // request raced a mutator-led final pause that already closed
        // the cycle — release without starting a spurious one.
    }

    // Release protocol, identical to the stop-the-world leader: clear
    // the request before bumping the generation, both under the lock.
    let mut st = ctx.coord.state.lock().unwrap();
    if result.is_err() {
        st.halt = true;
        ctx.coord.halt.store(true, Ordering::Release);
    }
    ctx.vm.gc_request.store(false, Ordering::Release);
    st.parked = 0;
    st.generation += 1;
    ctx.coord.cv.notify_all();
    drop(st);

    if let Some(mu) = mu {
        if let Some(snap) = ctx.slots[mu.tid].lock().unwrap().take() {
            snap.restore(mu);
        }
    }
    result.map(|()| !halted)
}

/// The snapshot pause proper (world stopped, leader only): validate the
/// tables if the oracle is armed, then seed marking from root values
/// and arm the deletion barrier.
fn cms_snapshot_pause(
    ctx: &RunCtx<'_>,
    heap: &CmsHeap,
    run: &CmsRun,
    t0: Instant,
) -> Result<(), ExecError> {
    let vm = ctx.vm;
    if ctx.options.oracle && vm.shadow.is_some() {
        if let Err(msg) = par_oracle_check(ctx) {
            let (fs, fe) = vm.from_space();
            let free = vm.free.load(R);
            return Err(ExecError::Oracle(format!(
                "at snapshot pause (from=[{fs},{fe}) free={free}): {msg}"
            )));
        }
    }
    let (from_start, _) = vm.from_space();
    let free_now = vm.free.load(R);
    let (mut killed_n, mut float_n) = (0u64, 0u64);
    heap.clear_marks();
    let mut gray = run.gray.lock().unwrap();
    debug_assert!(gray.is_empty(), "gray residue across cycles");
    debug_assert!(heap.satb_sink.lock().unwrap().is_empty(), "satb residue across cycles");
    gray.clear();
    let mut cache = ctx.caches[0].lock().unwrap();
    for g in gather_global_roots_in(&vm.module, vm.globals_start() as i64) {
        let RootRef::Mem(a) = g else { unreachable!("global root in a register") };
        let v = vm.word(a);
        if mark_value(heap, from_start, free_now, v) {
            gray.push(v);
        }
    }
    for (tid, slot) in ctx.slots.iter().enumerate() {
        let slot = slot.lock().unwrap();
        let Some(snap) = slot.as_ref() else { continue };
        let world = ThreadWorld { vm, tid: tid as u32, snap };
        let mut roots = StackRoots::default();
        let mut wm = ctx.watermarks[tid].lock().unwrap();
        // The value snapshot: tidy roots only. Derived values point
        // *into* objects whose base pointers are tidy roots of the same
        // frame, and marking works on whole objects, so bases cover
        // them. Nothing moves until the final pause re-walks the stack.
        gather_thread_roots_cached(
            &world,
            &mut cache,
            tid as u32,
            (snap.pc, snap.fp, snap.ap, snap.sp),
            &mut wm,
            &mut roots,
        );
        for &r in &roots.tidy {
            let v = read_root_snap(vm, snap, r);
            if mark_value(heap, from_start, free_now, v) {
                gray.push(v);
            }
        }
        // Killed slots: nulling a reference while a cycle runs is a
        // deletion, and SATB snapshots the start-of-cycle heap — so the
        // old value is enqueued (kept marked for *this* cycle, exactly
        // as the deletion barrier would have) and the slot is nulled;
        // the referent becomes unreachable at the next cycle's snapshot.
        for &r in &roots.killed {
            let RootRef::Mem(a) = r else { continue };
            let v = vm.word(a);
            if v == 0 {
                continue;
            }
            killed_n += 1;
            if v >= from_start && v < free_now {
                let header = vm.word(v);
                if header >= 0 {
                    let ty = vm.module.types.get(header_type_id(header));
                    let len = match ty {
                        HeapType::Array { .. } => vm.word(v + 1),
                        HeapType::Record { .. } => 0,
                    };
                    float_n += u64::from(ty.object_words(len as u32));
                }
            }
            if mark_value(heap, from_start, free_now, v) {
                gray.push(v);
            }
            vm.set_word(a, 0);
            if let Some(sh) = &vm.shadow {
                sh.set_mem(a, m3gc_vm::shadow::Tag::NonPtr);
            }
        }
    }
    run.in_flight.store(gray.len(), Ordering::SeqCst);
    drop(gray);
    heap.snap_free.store(free_now, R);
    run.finish_requested.store(false, Ordering::Release);
    // Arm the deletion barrier before the world resumes (the release
    // handshake publishes this to every mutator).
    heap.marking.store(true, Ordering::Release);
    *run.pending.lock().unwrap() = Some(CyclePending {
        snapshot_pause: t0.elapsed(),
        mark_started: Instant::now(),
        satb_drained_start: heap.satb_drained.load(R),
        roots_killed: killed_n,
        float_words_avoided: float_n,
        evac_select_pause: Duration::ZERO,
        evac_started: None,
        evac_pinned: 0,
        evac_regions: 0,
        evac_objects_start: 0,
        evac_words_start: 0,
        evac_healed_loads_start: 0,
        evac_healed_stores_start: 0,
    });
    let mut cs = run.mx.lock().unwrap();
    cs.cycles_started += 1;
    cs.markers_idle = false;
    run.cv.notify_all();
    Ok(())
}

/// The evacuation-select handshake (world stopped, coordinator-led,
/// conc-evac only). Runs at mark quiescence, *before* anything moves:
/// drains the mark residue to closure, verifies the cycle pre-motion
/// (the final pause cannot re-trace once objects relocate), pins every
/// region holding a frame derivation's target out of the candidate set,
/// computes per-region occupancy from the mark bitmap, and fixes the
/// evacuation set sparsest-first. `evacuating` is published before the
/// release handshake resumes the world, so every mutator arms its
/// self-healing forwarding paths.
fn cms_evac_select_pause(
    ctx: &RunCtx<'_>,
    heap: &CmsHeap,
    run: &CmsRun,
    t0: Instant,
) -> Result<(), ExecError> {
    let vm = ctx.vm;
    cms_finish_mark(ctx, heap, run);
    if ctx.options.oracle && vm.shadow.is_some() {
        if let Err(msg) = par_oracle_check(ctx) {
            let (fs, fe) = vm.from_space();
            let free = vm.free.load(R);
            return Err(ExecError::Oracle(format!(
                "at evacuation select (from=[{fs},{fe}) free={free}): {msg}"
            )));
        }
        if let Err(msg) = cms_shadow_verify(ctx, heap) {
            return Err(ExecError::Oracle(msg));
        }
    }

    let (from_start, _) = vm.from_space();
    let free_now = vm.free.load(R);

    // Pin the region of every object a parked frame derives into. A
    // pinned object never moves concurrently, so mid-phase derivation
    // arithmetic on its interior stays valid; the object relocates at
    // the final pause, bracketed by the usual un-derive/re-derive. This
    // pins *all* derivation targets — a conservative superset of the
    // ambiguous frames the rule exists for.
    let mut pinned_n = 0u64;
    {
        let mut cache = ctx.caches[0].lock().unwrap();
        for (tid, slot) in ctx.slots.iter().enumerate() {
            let slot = slot.lock().unwrap();
            let Some(snap) = slot.as_ref() else { continue };
            let world = ThreadWorld { vm, tid: tid as u32, snap };
            let mut roots = StackRoots::default();
            gather_thread_roots(
                &world,
                &mut cache,
                tid as u32,
                (snap.pc, snap.fp, snap.ap, snap.sp),
                &mut roots,
            );
            for d in &roots.derivations {
                for &(b, _) in &d.bases {
                    let v = read_root_snap(vm, snap, b);
                    if v >= from_start && v < free_now && heap.pin_region(heap.evac_region_of(v)) {
                        pinned_n += 1;
                    }
                }
                // Belt and suspenders: also pin through the derived
                // value itself (back-scan to its containing header), in
                // case a base was not decodable as a tidy root.
                let dv = read_root_snap(vm, snap, d.target);
                if dv >= from_start && dv < free_now {
                    let mut h = dv;
                    while h >= from_start && !heap.is_marked(h) {
                        h -= 1;
                    }
                    if h >= from_start && heap.pin_region(heap.evac_region_of(h)) {
                        pinned_n += 1;
                    }
                }
            }
        }
    }

    // Per-region occupancy from the mark bitmap (an object straddling a
    // region boundary counts — and is evacuated — with its header's
    // region).
    let mut occ: Vec<u64> = vec![0; heap.evac_region_count()];
    heap.for_each_marked(from_start, free_now, |addr| {
        let header = vm.word(addr);
        let ty = vm.module.types.get(header_type_id(header));
        let len = match ty {
            HeapType::Array { .. } => vm.word(addr + 1),
            HeapType::Record { .. } => 0,
        };
        occ[heap.evac_region_of(addr)] += u64::from(ty.object_words(len as u32));
    });
    let mut cand: Vec<(u64, usize)> = occ
        .iter()
        .enumerate()
        .filter(|&(r, &w)| w > 0 && !heap.is_pinned(r))
        .map(|(r, &w)| (w, r))
        .collect();
    cand.sort_unstable();

    {
        let mut list = run.evac_list.lock().unwrap();
        list.clear();
        for &(_, r) in &cand {
            heap.set_cset(r, true);
            list.push(r as i64);
        }
    }
    run.evac_next.store(0, R);
    run.evac_copies.lock().unwrap().clear();
    run.updater_done.store(false, Ordering::Release);
    heap.clear_dirty();
    heap.evac_snap.store(free_now, R);
    let (to_start, _) = vm.to_space();
    heap.evac_to.store(to_start, R);
    heap.evac_pinned.fetch_add(pinned_n, R);
    if let Some(p) = run.pending.lock().unwrap().as_mut() {
        p.evac_select_pause = t0.elapsed();
        p.evac_started = Some(Instant::now());
        p.evac_pinned = pinned_n;
        p.evac_regions = cand.len() as u64;
        p.evac_objects_start = heap.evac_objects.load(R);
        p.evac_words_start = heap.evac_words.load(R);
        p.evac_healed_loads_start = heap.evac_healed_loads.load(R);
        p.evac_healed_stores_start = heap.evac_healed_stores.load(R);
    }
    {
        let mut cs = run.mx.lock().unwrap();
        cs.copiers_idle = false;
    }
    // The release handshake that resumes the world publishes this to
    // every mutator's load/store fast path.
    heap.evacuating.store(true, Ordering::Release);
    Ok(())
}

/// One concurrent copier (coordinator-spawned, mutators running).
/// Claims cset regions off the shared cursor and evacuates their marked
/// objects: CAS the header to the `EVAC_BUSY` claim, bump the shared
/// to-space frontier, copy body and shadow tags, publish the forwarding
/// word `-(new+1)` with release ordering. A mutator store to a claimed
/// object spins on the BUSY word and lands in the copy; a store that
/// committed into the original before the claim is visible to the
/// post-claim body read (SeqCst claim + fences on both sides). Aborts
/// between objects when a final pause is requested — whatever is left
/// unforwarded is flushed by that pause's residual copy.
fn cms_conc_copier(ctx: &RunCtx<'_>) {
    let vm = ctx.vm;
    let heap = vm.cms.as_ref().expect("copier without cms heap");
    let run = ctx.cms.as_ref().expect("copier without cms run");
    let (from_start, _) = vm.from_space();
    let (_, to_end) = vm.to_space();
    let free_snap = heap.evac_snap.load(R);
    let rw = heap.evac_region_words.load(R);
    let double = heap.fault_evac() == EvacFault::DoubleCopy;
    let regions: Vec<i64> = run.evac_list.lock().unwrap().clone();
    let mut my_copies: Vec<i64> = Vec::new();
    let mut addrs: Vec<i64> = Vec::new();
    let (mut objs, mut words_copied, mut regions_done) = (0u64, 0u64, 0u64);
    'regions: loop {
        let i = run.evac_next.fetch_add(1, R);
        if i >= regions.len() {
            break;
        }
        let region = regions[i];
        let lo = (region * rw).max(from_start);
        let hi = ((region + 1) * rw).min(free_snap);
        addrs.clear();
        heap.for_each_marked(lo, hi, |a| addrs.push(a));
        for &addr in &addrs {
            if run.finish_requested.load(Ordering::Acquire) {
                break 'regions;
            }
            let header = vm.word(addr);
            debug_assert!(header >= 0, "cset region claimed twice at {addr}");
            // Under the DoubleCopy fault the claim is skipped and the
            // object copied (and published) twice — the orphaned first
            // copy is what the audit's accounting check must catch.
            if !double && vm.cas_word(addr, header, EVAC_BUSY).is_err() {
                continue;
            }
            // Pairs with the mutator store path's fence: every store
            // that committed before this claim is visible to the body
            // reads below.
            std::sync::atomic::fence(Ordering::SeqCst);
            let ty = vm.module.types.get(header_type_id(header));
            let len = match ty {
                HeapType::Array { .. } => vm.word(addr + 1),
                HeapType::Record { .. } => 0,
            };
            let obj_words = i64::from(ty.object_words(len as u32));
            for _ in 0..if double { 2 } else { 1 } {
                let new = heap.evac_to.fetch_add(obj_words, R);
                assert!(
                    new + obj_words <= to_end,
                    "to-space overflow during concurrent evacuation"
                );
                vm.set_word(new, header);
                for off in 1..obj_words {
                    vm.set_word(new + off, vm.word(addr + off));
                }
                if let Some(sh) = &vm.shadow {
                    sh.copy_words(addr, new, obj_words);
                }
                vm.set_word_release(addr, -(new + 1));
                my_copies.push(new);
                objs += 1;
                words_copied += obj_words as u64;
            }
        }
        regions_done += 1;
    }
    heap.evac_objects.fetch_add(objs, R);
    heap.evac_words.fetch_add(words_copied, R);
    heap.evac_regions.fetch_add(regions_done, R);
    run.evac_copies.lock().unwrap().append(&mut my_copies);
}

/// The concurrent reference updater (coordinator thread, mutators
/// running): one type-directed pass over the published copies,
/// rewriting each stale cset reference through its — by now fully
/// published — forwarding word. A CAS per slot keeps racing mutator
/// stores safe: if the CAS loses, the racing store's value was healed
/// on its own path. The pass is convergence work, not a correctness
/// requirement — self-healing loads and the final-pause rewrite would
/// get there without it — but it takes the bulk of the rewrite off
/// both. Aborts (leaving `updater_done` unset) when a pause interrupts.
fn cms_conc_update(ctx: &RunCtx<'_>) {
    let vm = ctx.vm;
    let heap = vm.cms.as_ref().expect("updater without cms heap");
    let run = ctx.cms.as_ref().expect("updater without cms run");
    let (from_start, _) = vm.from_space();
    let free_snap = heap.evac_snap.load(R);
    let copies: Vec<i64> = run.evac_copies.lock().unwrap().clone();
    for &new in &copies {
        if run.finish_requested.load(Ordering::Acquire) {
            return; // the final pause finishes the rewrite itself
        }
        let header = vm.word(new);
        let ty = vm.module.types.get(header_type_id(header));
        let len = match ty {
            HeapType::Array { .. } => vm.word(new + 1),
            HeapType::Record { .. } => 0,
        };
        for off in ty.pointer_offset_iter(len as u32) {
            let slot = new + i64::from(off);
            let v = vm.word(slot);
            if v < from_start
                || v >= free_snap
                || !heap.in_cset(heap.evac_region_of(v))
                || !heap.is_marked(v)
            {
                continue;
            }
            let hval = vm.word_acquire(v);
            if hval >= 0 || hval == EVAC_BUSY {
                continue; // unclaimed (pause will move it) / defensive
            }
            if vm.cas_word(slot, v, -(hval + 1)).is_ok() {
                heap.set_dirty(slot);
            }
        }
    }
    run.updater_done.store(true, Ordering::Release);
}

/// The forwarding audit (oracle runs only; world stopped, or the
/// coordinator stood down under `hold_evac`): proves the concurrent
/// copy phase lost nothing. Walks every cset region's marked objects
/// and checks that (a) each one is forwarded to a structurally
/// identical copy — a body word that diverges with no recorded
/// to-space write is a store torn across the forwarding publish — and
/// (b) the forwarding targets account for every to-space word the
/// copiers allocated, so a double copy (orphaned twin) or a lost
/// publish cannot hide. Vacuously passes on a cycle the final pause
/// interrupted (`updater_done` unset): partial forwarding is legal
/// there and the pause's residual copy flushes it.
pub(crate) fn cms_evac_audit(ctx: &RunCtx<'_>) -> Result<(), String> {
    let vm = ctx.vm;
    let heap = vm.cms.as_ref().expect("evac audit without cms heap");
    let run = ctx.cms.as_ref().expect("evac audit without cms run");
    if !run.updater_done.load(Ordering::Acquire) {
        return Ok(());
    }
    let (from_start, _) = vm.from_space();
    let (to_start, _) = vm.to_space();
    let free_snap = heap.evac_snap.load(R);
    let evac_to = heap.evac_to.load(R);
    let rw = heap.evac_region_words.load(R);
    let regions: Vec<i64> = run.evac_list.lock().unwrap().clone();
    let mut covered = 0i64;
    let mut addrs: Vec<i64> = Vec::new();
    for &region in &regions {
        let lo = (region * rw).max(from_start);
        let hi = ((region + 1) * rw).min(free_snap);
        addrs.clear();
        heap.for_each_marked(lo, hi, |a| addrs.push(a));
        for &addr in &addrs {
            let h = vm.word_acquire(addr);
            if h == m3gc_vm::par::EVAC_BUSY {
                return Err(format!("evac audit: claim at {addr} was never published"));
            }
            if h >= 0 {
                return Err(format!(
                    "evac audit: marked cset object at {addr} was never copied \
                     (lost claim or forwarding publish)"
                ));
            }
            let new = -(h + 1);
            if new < to_start || new >= evac_to {
                return Err(format!(
                    "evac audit: forwarding at {addr} points to {new}, outside the \
                     copied to-space window [{to_start},{evac_to})"
                ));
            }
            let copy_header = vm.word(new);
            if copy_header < 0 {
                return Err(format!(
                    "evac audit: copy at {new} carries a forwarding word, not a header"
                ));
            }
            let ty = vm.module.types.get(header_type_id(copy_header));
            let len = match ty {
                HeapType::Array { .. } => vm.word(new + 1),
                HeapType::Record { .. } => 0,
            };
            let obj_words = i64::from(ty.object_words(len as u32));
            covered += obj_words;
            for off in 1..obj_words {
                let ov = vm.word(addr + off);
                let cv = vm.word(new + off);
                if ov != cv && !heap.is_dirty(new + off) {
                    return Err(format!(
                        "evac audit: object at {addr} (copy {new}) diverges at word \
                         {off} ({ov} vs {cv}) with no recorded to-space write — a \
                         store was torn across the forwarding publish and lost"
                    ));
                }
            }
        }
    }
    let span = evac_to - to_start;
    if covered != span {
        return Err(format!(
            "evac audit: forwarding words account for {covered} to-space words but \
             the copiers allocated {span} — an object was copied more than once or \
             a publish was lost"
        ));
    }
    Ok(())
}

/// The final pause proper (world stopped, leader only): stand the
/// markers down, drain the residue to closure, verify, evacuate.
#[allow(clippy::too_many_arguments)]
fn cms_final_pause(
    ctx: &RunCtx<'_>,
    heap: &CmsHeap,
    run: &CmsRun,
    forced: bool,
    counted: bool,
    allocs_now: u64,
    handshake_time: Duration,
    t0: Instant,
) -> Result<(), ExecError> {
    let vm = ctx.vm;
    run.finish_requested.store(true, Ordering::Release);
    if counted {
        // A mutator-led pause must wait for the marker threads to stand
        // down before touching the gray stack; the coordinator joins
        // them and flips `markers_idle` (spawning them first if it has
        // not yet caught up with this cycle — they exit immediately on
        // the request above).
        let mut cs = run.mx.lock().unwrap();
        run.cv.notify_all(); // wake the coordinator if it hasn't started this cycle yet
        while !cs.markers_idle || !cs.copiers_idle {
            // Concurrent copiers and the updater poll `finish_requested`
            // per object and stand down; the coordinator flips
            // `copiers_idle` once they have, so nothing races the
            // rewrites below.
            cs = run.cv.wait(cs).unwrap();
        }
    }
    // A coordinator-led pause never waits: marker threads exist only
    // inside the coordinator's own spawn/join section, so none can be
    // running here — but `markers_idle` may legitimately read false if
    // a snapshot pause opened a *newer* cycle between the coordinator
    // joining its markers and winning the request CAS. Waiting would
    // deadlock on itself; draining sequentially below is sound either
    // way.
    let pending = run.pending.lock().unwrap().take().expect("final pause without an open cycle");
    let mark_concurrent = t0.saturating_duration_since(pending.mark_started);

    if !forced {
        let mut last = ctx.last_gc_allocations.lock().unwrap();
        if *last == Some(allocs_now) {
            // No allocation progress since the previous completed
            // cycle: the heap is genuinely full. (Snapshot pauses never
            // run this check — they free nothing by design.)
            return Err(ExecError::Trap(VmTrap::OutOfMemory));
        }
        *last = Some(allocs_now);
    }

    cms_finish_mark(ctx, heap, run);

    let evacuating = heap.evacuating.load(Ordering::Acquire);
    if ctx.options.oracle && vm.shadow.is_some() {
        if let Err(msg) = par_oracle_check(ctx) {
            let (fs, fe) = vm.from_space();
            let free = vm.free.load(R);
            return Err(ExecError::Oracle(format!(
                "at final pause (from=[{fs},{fe}) free={free}): {msg}"
            )));
        }
        if evacuating {
            // The sequential re-trace cannot run once objects have
            // moved (forwarded headers are not walkable); it ran
            // pre-motion at the select handshake instead. What *can* be
            // proven here is the forwarding protocol itself.
            if let Err(msg) = cms_evac_audit(ctx) {
                return Err(ExecError::Oracle(msg));
            }
        } else if let Err(msg) = cms_shadow_verify(ctx, heap) {
            return Err(ExecError::Oracle(msg));
        }
    }

    let mut stats = cms_evacuate(ctx, heap, run);
    if evacuating {
        // The cycle's relocation state dies with the flip: the copies
        // now live inside the ordinary from-space prefix.
        heap.evacuating.store(false, Ordering::Release);
        heap.clear_evac_sets();
        heap.clear_dirty();
        heap.evac_snap.store(0, R);
        heap.evac_to.store(0, R);
        run.evac_list.lock().unwrap().clear();
        run.evac_copies.lock().unwrap().clear();
        run.evac_next.store(0, R);
        run.updater_done.store(false, Ordering::Release);
    }
    if ctx.options.oracle && vm.shadow.is_some() {
        if let Err(msg) = par_oracle_check(ctx) {
            let (fs, fe) = vm.from_space();
            let free = vm.free.load(R);
            return Err(ExecError::Oracle(format!(
                "after evacuation (from=[{fs},{fe}) free={free}): {msg}"
            )));
        }
    }
    heap.marking.store(false, Ordering::Release);
    stats.handshake_time = handshake_time;
    stats.cms_cycle = true;
    stats.snapshot_pause = pending.snapshot_pause;
    stats.mark_concurrent = mark_concurrent;
    stats.satb_drained = heap.satb_drained.load(R) - pending.satb_drained_start;
    stats.evac_cycle = evacuating;
    stats.evac_select_pause = pending.evac_select_pause;
    stats.evac_conc_time =
        pending.evac_started.map_or(Duration::ZERO, |s| t0.saturating_duration_since(s));
    stats.evac_regions = pending.evac_regions;
    stats.evac_pinned = pending.evac_pinned;
    stats.evac_objects = heap.evac_objects.load(R) - pending.evac_objects_start;
    stats.evac_words = heap.evac_words.load(R) - pending.evac_words_start;
    stats.evac_healed_loads = heap.evac_healed_loads.load(R) - pending.evac_healed_loads_start;
    stats.evac_healed_stores = heap.evac_healed_stores.load(R) - pending.evac_healed_stores_start;
    stats.roots_killed += pending.roots_killed;
    stats.float_words_avoided += pending.float_words_avoided;
    stats.parked_at_polls = ctx.poll_parks.swap(0, R);
    stats.parked_at_allocs = ctx.alloc_parks.swap(0, R);
    stats.total_time = t0.elapsed();
    ctx.gc_log.lock().unwrap().push(stats);
    Ok(())
}

/// Sequentially drains the leftover gray stack and every flushed SATB
/// buffer to transitive closure (world stopped). After this, the mark
/// bitmap covers everything reachable at the snapshot plus everything
/// allocated since — a superset of everything any live root can reach.
fn cms_finish_mark(ctx: &RunCtx<'_>, heap: &CmsHeap, run: &CmsRun) {
    let vm = ctx.vm;
    let (from_start, from_end) = vm.from_space();
    let mut gray = std::mem::take(&mut *run.gray.lock().unwrap());
    loop {
        while let Some(addr) = gray.pop() {
            scan_mark(vm, heap, from_start, from_end, addr, &mut gray);
        }
        let taken = std::mem::take(&mut *heap.satb_sink.lock().unwrap());
        if taken.is_empty() {
            break;
        }
        heap.satb_drained.fetch_add(taken.len() as u64, R);
        gray.extend(taken.into_iter().filter(|&v| mark_value(heap, from_start, from_end, v)));
    }
    run.in_flight.store(0, Ordering::SeqCst);
}

/// The cycle's shadow verification: a sequential trace from the
/// *current* roots — the bit-identical reachable set a full
/// stop-the-world collection at this pause would copy — asserting that
/// every reachable object is marked. This is the oracle that catches a
/// broken deletion barrier: a dropped or reordered SATB enqueue leaves
/// some snapshot-reachable object unmarked, and if any live path to it
/// remains, this walk finds it.
pub(crate) fn cms_shadow_verify(ctx: &RunCtx<'_>, heap: &CmsHeap) -> Result<(), String> {
    let vm = ctx.vm;
    let (from_start, _) = vm.from_space();
    let free_now = vm.free.load(R);
    let mut visited: HashSet<i64> = HashSet::new();
    let mut stack: Vec<i64> = Vec::new();
    let reach = |stack: &mut Vec<i64>, visited: &mut HashSet<i64>, v: i64| {
        if v < from_start || v >= free_now || !visited.insert(v) {
            return Ok(());
        }
        if !heap.is_marked(v) {
            return Err(format!(
                "concurrent marking lost a reachable object: {v} is live at the final \
                 pause but unmarked (SATB invariant violated)"
            ));
        }
        stack.push(v);
        Ok(())
    };
    for g in gather_global_roots_in(&vm.module, vm.globals_start() as i64) {
        let RootRef::Mem(a) = g else { unreachable!("global root in a register") };
        reach(&mut stack, &mut visited, vm.word(a))?;
    }
    let mut cache = ctx.caches[0].lock().unwrap();
    for (tid, slot) in ctx.slots.iter().enumerate() {
        let slot = slot.lock().unwrap();
        let Some(snap) = slot.as_ref() else { continue };
        let world = ThreadWorld { vm, tid: tid as u32, snap };
        let mut roots = StackRoots::default();
        // A fresh, cache-free walk: the verifier must not trust the
        // watermark splices it is part of the net for.
        gather_thread_roots(
            &world,
            &mut cache,
            tid as u32,
            (snap.pc, snap.fp, snap.ap, snap.sp),
            &mut roots,
        );
        for &r in &roots.tidy {
            reach(&mut stack, &mut visited, read_root_snap(vm, snap, r))?;
        }
    }
    while let Some(addr) = stack.pop() {
        let header = vm.word(addr);
        let ty = vm.module.types.get(header_type_id(header));
        let len = match ty {
            HeapType::Array { .. } => vm.word(addr + 1),
            HeapType::Record { .. } => 0,
        };
        for off in ty.pointer_offset_iter(len as u32) {
            reach(&mut stack, &mut visited, vm.word(addr + i64::from(off)))?;
        }
    }
    Ok(())
}

/// Shared state of one bitmap evacuation.
struct CmsGc<'vm> {
    vm: &'vm ParMachine,
    heap: &'vm CmsHeap,
    /// To-space copy frontier.
    free: AtomicI64,
    to_end: i64,
    from_start: i64,
    /// The allocated from-space prefix (`vm.free` at the pause).
    from_used: i64,
    /// Next unclaimed chunk index.
    chunk_next: AtomicUsize,
    barrier: Barrier,
    /// True when this pause closes a concurrent-evacuation cycle: the
    /// copy phase skips already-forwarded objects, and the rewrite
    /// phase also walks the concurrently published copies.
    evacuating: bool,
    /// The concurrent copies (to-space has no mark bitmap to iterate).
    conc_copies: Vec<i64>,
    workers: usize,
}

struct CmsWorkerReport {
    threads: Vec<(usize, Snapshot)>,
    objects: u64,
    words: u64,
    roots: u64,
    roots_killed: u64,
    float_words_avoided: u64,
    derived: u64,
    frames: u64,
    spliced: u64,
    decode: m3gc_core::decode::DecodeCounters,
    copy_time: Duration,
}

/// Follows a forwarding pointer installed by the copy phase. An
/// unforwarded header here means an unmarked object survived to the
/// rewrite — a marking bug the shadow verification reports first
/// whenever the oracle is armed.
fn forwarded(vm: &ParMachine, v: i64) -> i64 {
    let f = vm.word(v);
    assert!(f < 0, "unmarked object reached the cms rewrite at {v}");
    -(f + 1)
}

/// One evacuation worker: stack walk + un-derive, chunked bitmap copy,
/// forwarding rewrite, re-derive. Unlike the stop-the-world trace there
/// is no claim CAS and no work stealing — the mark bitmap already
/// holds the transitive closure, so the copy set is a static partition.
fn cms_evac_worker(
    gc: &CmsGc<'_>,
    cache_mx: &Mutex<DecodeCache>,
    watermarks: &[Mutex<StackCache>],
    verify: bool,
    w: usize,
    mut my: Part,
) -> CmsWorkerReport {
    let vm = gc.vm;
    let mut cache = cache_mx.lock().unwrap();
    let decode_before = cache.counters();
    let (mut roots_n, mut derived_n, mut frames_n, mut spliced_n) = (0u64, 0u64, 0u64, 0u64);
    let (mut killed_n, mut float_n) = (0u64, 0u64);
    let heap_used = (gc.from_start, gc.from_used);

    // Phase 1: walk my threads' stacks — only frames above each
    // thread's watermark are re-decoded; everything below was cached at
    // the snapshot pause — and un-derive. Killed slots are nulled here
    // (marking is over, so no SATB enqueue: a marked referent is still
    // copied this cycle and dies at the next one).
    for (tid, snap, roots) in &mut my {
        {
            let world = ThreadWorld { vm, tid: *tid as u32, snap };
            let regs = (snap.pc, snap.fp, snap.ap, snap.sp);
            let mut wm = watermarks[*tid].lock().unwrap();
            gather_thread_roots_cached(&world, &mut cache, *tid as u32, regs, &mut wm, roots);
            if verify {
                verify_spliced_roots(&world, &mut cache, *tid as u32, regs, roots);
            }
        }
        un_derive_snap(vm, snap, roots);
        let (rk, fw) = apply_kills_par(vm, roots, heap_used);
        killed_n += rk;
        float_n += fw;
        roots_n += roots.tidy.len() as u64;
        derived_n += roots.derivations.len() as u64;
        frames_n += roots.frames as u64;
        spliced_n += roots.frames_spliced as u64;
    }
    gc.barrier.wait();
    let t_copy = Instant::now();

    // Phase 2: chunked bitmap copy. Each chunk's marked headers belong
    // to exactly one worker, so plain stores suffice; the next barrier
    // publishes every forwarding pointer. TLAB holes are zeroed words —
    // never marked, never visited.
    let mut copied: Vec<i64> = Vec::new();
    let (mut objects, mut words_copied) = (0u64, 0u64);
    let span = gc.from_used - gc.from_start;
    let n_chunks = ((span + CHUNK_WORDS - 1) / CHUNK_WORDS) as usize;
    loop {
        let c = gc.chunk_next.fetch_add(1, R);
        if c >= n_chunks {
            break;
        }
        let lo = gc.from_start + c as i64 * CHUNK_WORDS;
        let hi = (lo + CHUNK_WORDS).min(gc.from_used);
        gc.heap.for_each_marked(lo, hi, |addr| {
            let header = vm.word(addr);
            if gc.evacuating && header < 0 {
                // Evacuated concurrently; its forwarding word is
                // already published and its copy already in to-space.
                return;
            }
            assert!(header >= 0, "mark bit on a non-header word at {addr}");
            let ty = vm.module.types.get(header_type_id(header));
            let len = match ty {
                HeapType::Array { .. } => vm.word(addr + 1),
                HeapType::Record { .. } => 0,
            };
            let obj_words = i64::from(ty.object_words(len as u32));
            let new = gc.free.fetch_add(obj_words, R);
            assert!(new + obj_words <= gc.to_end, "to-space overflow during cms evacuation");
            for off in 0..obj_words {
                vm.set_word(new + off, vm.word(addr + off));
            }
            if let Some(sh) = &vm.shadow {
                sh.copy_words(addr, new, obj_words);
            }
            vm.set_word(addr, -(new + 1));
            copied.push(new);
            objects += 1;
            words_copied += obj_words as u64;
        });
    }
    gc.barrier.wait();

    // Phase 3: rewrite my copied objects' pointer fields, my threads'
    // tidy roots, and (worker 0) the globals through plain forwarding
    // loads.
    for &new in &copied {
        let header = vm.word(new);
        let ty = vm.module.types.get(header_type_id(header));
        let len = match ty {
            HeapType::Array { .. } => vm.word(new + 1),
            HeapType::Record { .. } => 0,
        };
        for off in ty.pointer_offset_iter(len as u32) {
            let slot = new + i64::from(off);
            let v = vm.word(slot);
            if v >= gc.from_start && v < gc.from_used {
                vm.set_word(slot, forwarded(vm, v));
            }
        }
    }
    // Concurrent copies: their fields may still reference objects this
    // *pause* moved (pinned regions, the in-flight allocation window,
    // cset stragglers of an interrupted cycle) — and stale cset
    // references too, if the cycle was interrupted before the updater
    // finished. One type-directed pass over a strided share fixes both;
    // every forwarding word is published by the phase-2 barrier.
    let mut i = w;
    while i < gc.conc_copies.len() {
        let new = gc.conc_copies[i];
        i += gc.workers;
        let header = vm.word(new);
        let ty = vm.module.types.get(header_type_id(header));
        let len = match ty {
            HeapType::Array { .. } => vm.word(new + 1),
            HeapType::Record { .. } => 0,
        };
        for off in ty.pointer_offset_iter(len as u32) {
            let slot = new + i64::from(off);
            let v = vm.word(slot);
            if v >= gc.from_start && v < gc.from_used {
                vm.set_word(slot, forwarded(vm, v));
            }
        }
    }
    if w == 0 {
        for g in gather_global_roots_in(&vm.module, vm.globals_start() as i64) {
            let RootRef::Mem(a) = g else { unreachable!("global root in a register") };
            let v = vm.word(a);
            if v >= gc.from_start && v < gc.from_used {
                vm.set_word(a, forwarded(vm, v));
            }
        }
        roots_n += vm.module.global_ptr_roots.len() as u64;
    }
    for (_, snap, roots) in &mut my {
        for i in 0..roots.tidy.len() {
            let r = roots.tidy[i];
            let v = read_root_snap(vm, snap, r);
            if v >= gc.from_start && v < gc.from_used {
                write_root_snap(vm, snap, r, forwarded(vm, v));
            }
        }
    }
    gc.barrier.wait();
    let copy_time = t_copy.elapsed();

    // Phase 4: re-derive, reverse of the un-derive order.
    for (_, snap, roots) in my.iter_mut().rev() {
        re_derive_snap(vm, snap, roots);
    }

    CmsWorkerReport {
        threads: my.into_iter().map(|(tid, snap, _)| (tid, snap)).collect(),
        objects,
        words: words_copied,
        roots: roots_n,
        roots_killed: killed_n,
        float_words_avoided: float_n,
        derived: derived_n,
        frames: frames_n,
        spliced: spliced_n,
        decode: cache.counters().since(decode_before),
        copy_time,
    }
}

/// The final pause's parallel evacuation of the marked set (leader
/// only, world stopped). Mirrors `collect_parallel`'s thread-dealing
/// and snapshot publication, but the copy itself is bitmap-driven.
fn cms_evacuate(ctx: &RunCtx<'_>, heap: &CmsHeap, run: &CmsRun) -> ParGcStats {
    let vm = ctx.vm;
    let workers = ctx.caches.len();
    let mut parts: Vec<Part> = (0..workers).map(|_| Vec::new()).collect();
    let mut n_threads = 0usize;
    for (tid, slot) in ctx.slots.iter().enumerate() {
        if let Some(snap) = slot.lock().unwrap().take() {
            parts[n_threads % workers].push((tid, snap, StackRoots::default()));
            n_threads += 1;
        }
    }

    let (from_start, _) = vm.from_space();
    let (to_start, to_end) = vm.to_space();
    let evacuating = heap.evacuating.load(Ordering::Acquire);
    let gc = CmsGc {
        vm,
        heap,
        // A conc-evac pause continues the copiers' frontier: to-space
        // already holds `[to_start, evac_to)` of published copies.
        free: AtomicI64::new(if evacuating { heap.evac_to.load(R) } else { to_start }),
        to_end,
        from_start,
        from_used: vm.free.load(R),
        chunk_next: AtomicUsize::new(0),
        barrier: Barrier::new(workers),
        evacuating,
        conc_copies: if evacuating { run.evac_copies.lock().unwrap().clone() } else { Vec::new() },
        workers,
    };

    let mut reports: Vec<CmsWorkerReport> = Vec::with_capacity(workers);
    {
        let mut parts = parts.into_iter();
        let part0 = parts.next().expect("worker 0 partition");
        let verify = ctx.options.oracle;
        std::thread::scope(|s| {
            let gc = &gc;
            let handles: Vec<_> = parts
                .enumerate()
                .map(|(i, part)| {
                    let cache = &ctx.caches[i + 1];
                    let wms = &ctx.watermarks;
                    s.spawn(move || cms_evac_worker(gc, cache, wms, verify, i + 1, part))
                })
                .collect();
            reports.push(cms_evac_worker(gc, &ctx.caches[0], &ctx.watermarks, verify, 0, part0));
            for h in handles {
                reports.push(h.join().expect("cms evacuation worker panicked"));
            }
        });
    }

    for report in &reports {
        for (tid, snap) in &report.threads {
            *ctx.slots[*tid].lock().unwrap() = Some(snap.clone());
        }
    }
    vm.finish_collection(gc.free.load(R));

    let mut stats = ParGcStats {
        per_worker_objects: reports.iter().map(|r| r.objects).collect(),
        per_worker_words: reports.iter().map(|r| r.words).collect(),
        steals: vec![0; workers], // no stealing: the bitmap partitions the copy
        stacks_traced: n_threads as u64,
        ..ParGcStats::default()
    };
    for r in &reports {
        stats.objects_copied += r.objects;
        stats.words_copied += r.words;
        stats.roots += r.roots;
        stats.roots_killed += r.roots_killed;
        stats.float_words_avoided += r.float_words_avoided;
        stats.derived_updated += r.derived;
        stats.frames_traced += r.frames;
        stats.frames_spliced += r.spliced;
        stats.decode_hits += r.decode.hits;
        stats.decode_misses += r.decode.misses;
        stats.decode_ops += r.decode.points_decoded;
    }
    stats.copy_time = reports[0].copy_time;
    stats
}
