//! Concurrent snapshot-at-the-beginning (SATB) marking on the parallel
//! runtime.
//!
//! A `--gc cms` collection cycle replaces the single monolithic
//! stop-the-world pause with two short ones and a concurrent phase in
//! between:
//!
//! 1. **Snapshot pause.** The requesting mutator leads the usual
//!    safepoint handshake, but instead of copying anything it seeds the
//!    mark state: the bitmap is cleared, every root *value* — globals
//!    plus each parked thread's tidy roots, gathered with the
//!    watermark-spliced stack walk — is marked and pushed on the shared
//!    gray stack, `snap_free` records the allocation frontier, and the
//!    `marking` flag arms the `StB` deletion barrier. The world
//!    resumes.
//! 2. **Concurrent mark.** `conc_workers` markers (owned by a
//!    coordinator thread that sleeps between cycles) trace the gray
//!    stack to closure while the mutators keep running. The SATB
//!    invariant keeps this sound: any pointer a mutator overwrites
//!    while marking is enqueued (old value first) into a per-mutator
//!    buffer the markers drain, and every object allocated during
//!    marking is born black — so no object reachable at the snapshot
//!    can be lost, only floating garbage can be retained. When the
//!    markers go quiescent (no gray work, empty SATB sink, nothing in
//!    flight) the coordinator requests the final pause itself rather
//!    than waiting for the heap to fill.
//! 3. **Final pause.** A second handshake stops the world; the leader
//!    waits for the markers to stand down, sequentially drains the
//!    residual gray stack and SATB buffers to closure, and then runs a
//!    *bitmap evacuation*: workers claim fixed-size from-space chunks
//!    with one fetch-add each and copy that chunk's marked objects —
//!    no per-object claim CAS, no work-stealing trace, because the
//!    mark bitmap already is the transitive closure. Root slots and
//!    copied objects' fields are rewritten through plain forwarding
//!    loads after a barrier. The only stop-the-world work left is the
//!    copy itself.
//!
//! With the oracle armed, every cycle is shadow-verified in the final
//! pause before anything moves: a sequential trace from the *current*
//! roots (the exact reachable set a full stop-the-world collection of
//! this pause would copy) asserts that every reachable object carries a
//! mark bit. A deletion barrier that dropped or reordered even one
//! enqueue surfaces as an [`ExecError::Oracle`] here — see the SATB
//! mutation tests.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};
use std::sync::{Barrier, Condvar, Mutex};
use std::time::{Duration, Instant};

use m3gc_core::decode::DecodeCache;
use m3gc_core::heap::{header_type_id, HeapType};
use m3gc_vm::machine::VmTrap;
use m3gc_vm::par::CmsHeap;
use m3gc_vm::{Mutator, ParMachine};

use crate::parallel::{
    apply_kills_par, par_oracle_check, re_derive_snap, read_root_snap, un_derive_snap,
    write_root_snap, ParGcStats, Part, RunCtx, Snapshot, ThreadWorld,
};
use crate::scheduler::ExecError;
use crate::trace::{
    gather_global_roots_in, gather_thread_roots, gather_thread_roots_cached, verify_spliced_roots,
    RootRef, StackCache, StackRoots,
};

/// Relaxed shorthand; cross-thread ordering comes from the handshake
/// locks, the marking flag's acquire/release pair and the evacuation
/// barriers.
const R: Ordering = Ordering::Relaxed;

/// Gray-stack objects a marker takes (and keeps locally) per refill.
const MARK_BATCH: usize = 64;

/// From-space words per evacuation chunk (fetch-add claim granularity).
/// A multiple of 64 so bitmap words never straddle chunks.
const CHUNK_WORDS: i64 = 1 << 12;

/// Coordinator/marker state, guarded by [`CmsRun::mx`].
struct CmsState {
    /// Bumped by every snapshot pause; the coordinator runs one marker
    /// generation per increment.
    cycles_started: u64,
    /// True once the current cycle's markers have exited (set by the
    /// coordinator after joining them). The final-pause leader waits on
    /// this before touching the gray stack.
    markers_idle: bool,
    /// Set at end of run; the coordinator exits once no cycle is open.
    stop: bool,
}

/// Per-run concurrent-marking state (lives in `RunCtx`).
pub(crate) struct CmsRun {
    /// Concurrent marking workers per cycle.
    workers: usize,
    mx: Mutex<CmsState>,
    cv: Condvar,
    /// Set by the final-pause leader; markers poll it and stand down.
    finish_requested: AtomicBool,
    /// Shared gray stack of marked-but-unscanned objects.
    gray: Mutex<Vec<i64>>,
    /// Objects pushed gray but not yet fully scanned — the markers'
    /// quiescence detector (0 + empty gray + empty sink = cycle traced).
    in_flight: AtomicUsize,
    /// Stats carried from the snapshot pause to the final pause.
    pending: Mutex<Option<CyclePending>>,
}

struct CyclePending {
    /// Full duration of the cycle-opening pause.
    snapshot_pause: Duration,
    /// When the world resumed and concurrent marking began.
    mark_started: Instant,
    /// `satb_drained` at cycle start (for the per-cycle delta).
    satb_drained_start: u64,
    /// Killed slots nulled at the snapshot pause (liveness-pruned maps).
    roots_killed: u64,
    /// Words those slots referenced directly (dropped at the *next*
    /// cycle — the snapshot keeps its start-of-cycle heap).
    float_words_avoided: u64,
}

impl CmsRun {
    pub(crate) fn new(workers: usize) -> CmsRun {
        CmsRun {
            workers,
            mx: Mutex::new(CmsState { cycles_started: 0, markers_idle: true, stop: false }),
            cv: Condvar::new(),
            finish_requested: AtomicBool::new(false),
            gray: Mutex::new(Vec::new()),
            in_flight: AtomicUsize::new(0),
            pending: Mutex::new(None),
        }
    }

    /// End-of-run signal: the coordinator finishes any open cycle and
    /// exits.
    pub(crate) fn stop(&self) {
        let mut cs = self.mx.lock().unwrap();
        cs.stop = true;
        self.cv.notify_all();
    }
}

/// Marks `v` if it is an object address in `[from_start, limit)` and
/// was not marked yet; returns `true` if this call marked it (the
/// caller owns pushing it gray).
fn mark_value(heap: &CmsHeap, from_start: i64, limit: i64, v: i64) -> bool {
    v >= from_start && v < limit && heap.mark_if_unmarked(v)
}

/// Scans one marked object's pointer fields, marking and collecting the
/// unmarked children. Returns how many were pushed.
fn scan_mark(
    vm: &ParMachine,
    heap: &CmsHeap,
    from_start: i64,
    from_end: i64,
    addr: i64,
    out: &mut Vec<i64>,
) -> usize {
    let header = vm.word(addr);
    debug_assert!(header >= 0, "forwarding pointer during marking at {addr}");
    let ty = vm.module.types.get(header_type_id(header));
    let len = match ty {
        HeapType::Array { .. } => vm.word(addr + 1),
        HeapType::Record { .. } => 0,
    };
    let mut pushed = 0;
    for off in ty.pointer_offset_iter(len as u32) {
        let v = vm.word(addr + i64::from(off));
        if mark_value(heap, from_start, from_end, v) {
            out.push(v);
            pushed += 1;
        }
    }
    pushed
}

/// One concurrent marking worker. Runs while the mutators run: pops
/// gray batches, drains the SATB sink when the gray stack is dry, and
/// exits on quiescence, on a final-pause request, or under the
/// `hold_marking` test knob. Field reads race mutator stores by design;
/// every word is an atomic, and a stale read is always safe — the
/// overwritten value the marker missed is exactly what the deletion
/// barrier enqueued.
fn marker_loop(ctx: &RunCtx<'_>) {
    let vm = ctx.vm;
    let heap = vm.cms.as_ref().expect("marker without cms heap");
    let run = ctx.cms.as_ref().expect("marker without cms run");
    let (from_start, from_end) = vm.from_space();
    let mut local: Vec<i64> = Vec::new();
    loop {
        if run.finish_requested.load(Ordering::Acquire) || heap.hold_marking.load(R) {
            break;
        }
        if local.is_empty() {
            let mut gray = run.gray.lock().unwrap();
            let n = gray.len().min(MARK_BATCH);
            if n > 0 {
                let at = gray.len() - n;
                local.extend(gray.drain(at..));
            }
        }
        if local.is_empty() {
            let taken = std::mem::take(&mut *heap.satb_sink.lock().unwrap());
            if !taken.is_empty() {
                heap.satb_drained.fetch_add(taken.len() as u64, R);
                let before = local.len();
                local.extend(
                    taken.into_iter().filter(|&v| mark_value(heap, from_start, from_end, v)),
                );
                run.in_flight.fetch_add(local.len() - before, Ordering::SeqCst);
            }
        }
        let Some(addr) = local.pop() else {
            if run.in_flight.load(Ordering::SeqCst) == 0 {
                // Nothing gray anywhere, the sink was just dry and no
                // marker holds unscanned work: the cycle is quiescent.
                // (SATB entries flushed after our sink check are the
                // final pause's residue — draining them there is the
                // same work, just not concurrent.)
                break;
            }
            std::thread::yield_now();
            continue;
        };
        let pushed = scan_mark(vm, heap, from_start, from_end, addr, &mut local);
        // Count the children in flight before retiring their parent, so
        // `in_flight == 0` still means "fully traced".
        if pushed > 0 {
            run.in_flight.fetch_add(pushed, Ordering::SeqCst);
        }
        run.in_flight.fetch_sub(1, Ordering::SeqCst);
        if local.len() >= 2 * MARK_BATCH {
            // Share the surplus so idle markers can help.
            let at = local.len() - MARK_BATCH;
            run.gray.lock().unwrap().extend(local.drain(at..));
        }
    }
    // Hand any unscanned work back for the final pause (or the other
    // markers); it is already counted in `in_flight`.
    if !local.is_empty() {
        run.gray.lock().unwrap().append(&mut local);
    }
}

/// The coordinator thread: one per cms run, spawned by `run_main`. It
/// sleeps until a snapshot pause opens a cycle, drives that cycle's
/// markers, and — when they quiesce with no pause pending — leads the
/// final pause itself so a traced cycle doesn't float until the heap
/// fills.
pub(crate) fn cms_coordinator(ctx: &RunCtx<'_>) {
    let vm = ctx.vm;
    let heap = vm.cms.as_ref().expect("coordinator without cms heap");
    let run = ctx.cms.as_ref().expect("coordinator without cms run");
    let mut seen = 0u64;
    loop {
        {
            let mut cs = run.mx.lock().unwrap();
            while cs.cycles_started == seen && !cs.stop {
                cs = run.cv.wait(cs).unwrap();
            }
            if cs.cycles_started == seen {
                return; // stopped with no open cycle
            }
            seen = cs.cycles_started;
        }
        std::thread::scope(|s| {
            for _ in 0..run.workers {
                s.spawn(|| marker_loop(ctx));
            }
        });
        {
            let mut cs = run.mx.lock().unwrap();
            cs.markers_idle = true;
            run.cv.notify_all();
        }
        // Quiescent with no final pause pending: finish the cycle now.
        // The CAS makes us the leader exactly like a mutator would be;
        // losing it means a mutator-led pause is already under way.
        if heap.marking.load(Ordering::Acquire)
            && !run.finish_requested.load(Ordering::Acquire)
            && !ctx.coord.halt.load(Ordering::Acquire)
            && !heap.hold_marking.load(R)
            && vm
                .gc_request
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            if let Err(e) = cms_lead_collection_counted(ctx, None, false) {
                // Mutator threads record their own errors on exit; a
                // coordinator-led pause must record here or an oracle
                // violation would vanish with this thread.
                let mut st = ctx.coord.state.lock().unwrap();
                let mut err = ctx.coord.error.lock().unwrap();
                if err.is_none() {
                    *err = Some(e);
                }
                st.halt = true;
                ctx.coord.halt.store(true, Ordering::Release);
                ctx.coord.cv.notify_all();
            }
        }
    }
}

/// The cms leader path, replacing `lead_collection_with` for cms runs:
/// the same handshake, but the stopped-world work depends on the phase
/// — a snapshot pause if no cycle is open, the final pause otherwise.
pub(crate) fn cms_lead_collection(
    ctx: &RunCtx<'_>,
    mu: Option<&mut Mutator>,
) -> Result<bool, ExecError> {
    // External callers (mutators, serve scheduler threads) are counted
    // in `active` and so stand in for themselves in the handshake.
    cms_lead_collection_counted(ctx, mu, true)
}

/// The handshake + phase dispatch behind [`cms_lead_collection`].
///
/// `counted` says whether the calling thread is itself part of
/// `CoordState::active`: a mutator (or serve scheduler thread) leader
/// contributes `parked += 1` for itself and waits for the *others*; the
/// cms coordinator is not an `active` thread, must not self-count —
/// doing so would let the handshake "complete" with one mutator still
/// running, and the world would not actually be stopped — and instead
/// waits until every active thread has parked.
fn cms_lead_collection_counted(
    ctx: &RunCtx<'_>,
    mut mu: Option<&mut Mutator>,
    counted: bool,
) -> Result<bool, ExecError> {
    let t0 = Instant::now();
    let mut st = ctx.coord.state.lock().unwrap();
    if st.halt {
        ctx.vm.gc_request.store(false, Ordering::Release);
        return Ok(false);
    }
    if let Some(mu) = mu.as_deref_mut() {
        if ctx.vm.is_poll_pc(mu.pc) {
            ctx.poll_parks.fetch_add(1, R);
        } else {
            ctx.alloc_parks.fetch_add(1, R);
        }
        // Exact frontier, flushed counters *and* a flushed SATB buffer
        // before leading (retire_tlab flushes all three).
        ctx.vm.retire_tlab(mu);
        *ctx.slots[mu.tid].lock().unwrap() = Some(Snapshot::of(mu));
    }
    if counted {
        st.parked += 1;
    }
    ctx.coord.cv.notify_all();
    while st.parked < st.active && !st.halt {
        st = ctx.coord.cv.wait(st).unwrap();
    }
    let halted = st.halt;
    let handshake_time = t0.elapsed();
    drop(st);

    let mut result: Result<(), ExecError> = Ok(());
    if !halted {
        let vm = ctx.vm;
        let heap = vm.cms.as_ref().expect("cms lead without cms heap");
        let run = ctx.cms.as_ref().expect("cms lead without cms run");
        let allocs_now = vm.allocations.load(R);
        let torture_due = allocs_now >= vm.force_gc_at.load(R);
        if torture_due {
            if let Some(every) = ctx.options.force_every_allocs {
                vm.force_gc_at.store(allocs_now + every.max(1), R);
            }
        }
        if heap.marking.load(Ordering::Acquire) {
            let forced = mu.is_none() || torture_due;
            result =
                cms_final_pause(ctx, heap, run, forced, counted, allocs_now, handshake_time, t0);
        } else if mu.is_some() {
            result = cms_snapshot_pause(ctx, heap, run, t0);
        }
        // mu.is_none() with no cycle open: the coordinator's idle
        // request raced a mutator-led final pause that already closed
        // the cycle — release without starting a spurious one.
    }

    // Release protocol, identical to the stop-the-world leader: clear
    // the request before bumping the generation, both under the lock.
    let mut st = ctx.coord.state.lock().unwrap();
    if result.is_err() {
        st.halt = true;
        ctx.coord.halt.store(true, Ordering::Release);
    }
    ctx.vm.gc_request.store(false, Ordering::Release);
    st.parked = 0;
    st.generation += 1;
    ctx.coord.cv.notify_all();
    drop(st);

    if let Some(mu) = mu {
        if let Some(snap) = ctx.slots[mu.tid].lock().unwrap().take() {
            snap.restore(mu);
        }
    }
    result.map(|()| !halted)
}

/// The snapshot pause proper (world stopped, leader only): validate the
/// tables if the oracle is armed, then seed marking from root values
/// and arm the deletion barrier.
fn cms_snapshot_pause(
    ctx: &RunCtx<'_>,
    heap: &CmsHeap,
    run: &CmsRun,
    t0: Instant,
) -> Result<(), ExecError> {
    let vm = ctx.vm;
    if ctx.options.oracle && vm.shadow.is_some() {
        if let Err(msg) = par_oracle_check(ctx) {
            let (fs, fe) = vm.from_space();
            let free = vm.free.load(R);
            return Err(ExecError::Oracle(format!(
                "at snapshot pause (from=[{fs},{fe}) free={free}): {msg}"
            )));
        }
    }
    let (from_start, _) = vm.from_space();
    let free_now = vm.free.load(R);
    let (mut killed_n, mut float_n) = (0u64, 0u64);
    heap.clear_marks();
    let mut gray = run.gray.lock().unwrap();
    debug_assert!(gray.is_empty(), "gray residue across cycles");
    debug_assert!(heap.satb_sink.lock().unwrap().is_empty(), "satb residue across cycles");
    gray.clear();
    let mut cache = ctx.caches[0].lock().unwrap();
    for g in gather_global_roots_in(&vm.module, vm.globals_start() as i64) {
        let RootRef::Mem(a) = g else { unreachable!("global root in a register") };
        let v = vm.word(a);
        if mark_value(heap, from_start, free_now, v) {
            gray.push(v);
        }
    }
    for (tid, slot) in ctx.slots.iter().enumerate() {
        let slot = slot.lock().unwrap();
        let Some(snap) = slot.as_ref() else { continue };
        let world = ThreadWorld { vm, tid: tid as u32, snap };
        let mut roots = StackRoots::default();
        let mut wm = ctx.watermarks[tid].lock().unwrap();
        // The value snapshot: tidy roots only. Derived values point
        // *into* objects whose base pointers are tidy roots of the same
        // frame, and marking works on whole objects, so bases cover
        // them. Nothing moves until the final pause re-walks the stack.
        gather_thread_roots_cached(
            &world,
            &mut cache,
            tid as u32,
            (snap.pc, snap.fp, snap.ap, snap.sp),
            &mut wm,
            &mut roots,
        );
        for &r in &roots.tidy {
            let v = read_root_snap(vm, snap, r);
            if mark_value(heap, from_start, free_now, v) {
                gray.push(v);
            }
        }
        // Killed slots: nulling a reference while a cycle runs is a
        // deletion, and SATB snapshots the start-of-cycle heap — so the
        // old value is enqueued (kept marked for *this* cycle, exactly
        // as the deletion barrier would have) and the slot is nulled;
        // the referent becomes unreachable at the next cycle's snapshot.
        for &r in &roots.killed {
            let RootRef::Mem(a) = r else { continue };
            let v = vm.word(a);
            if v == 0 {
                continue;
            }
            killed_n += 1;
            if v >= from_start && v < free_now {
                let header = vm.word(v);
                if header >= 0 {
                    let ty = vm.module.types.get(header_type_id(header));
                    let len = match ty {
                        HeapType::Array { .. } => vm.word(v + 1),
                        HeapType::Record { .. } => 0,
                    };
                    float_n += u64::from(ty.object_words(len as u32));
                }
            }
            if mark_value(heap, from_start, free_now, v) {
                gray.push(v);
            }
            vm.set_word(a, 0);
            if let Some(sh) = &vm.shadow {
                sh.set_mem(a, m3gc_vm::shadow::Tag::NonPtr);
            }
        }
    }
    run.in_flight.store(gray.len(), Ordering::SeqCst);
    drop(gray);
    heap.snap_free.store(free_now, R);
    run.finish_requested.store(false, Ordering::Release);
    // Arm the deletion barrier before the world resumes (the release
    // handshake publishes this to every mutator).
    heap.marking.store(true, Ordering::Release);
    *run.pending.lock().unwrap() = Some(CyclePending {
        snapshot_pause: t0.elapsed(),
        mark_started: Instant::now(),
        satb_drained_start: heap.satb_drained.load(R),
        roots_killed: killed_n,
        float_words_avoided: float_n,
    });
    let mut cs = run.mx.lock().unwrap();
    cs.cycles_started += 1;
    cs.markers_idle = false;
    run.cv.notify_all();
    Ok(())
}

/// The final pause proper (world stopped, leader only): stand the
/// markers down, drain the residue to closure, verify, evacuate.
#[allow(clippy::too_many_arguments)]
fn cms_final_pause(
    ctx: &RunCtx<'_>,
    heap: &CmsHeap,
    run: &CmsRun,
    forced: bool,
    counted: bool,
    allocs_now: u64,
    handshake_time: Duration,
    t0: Instant,
) -> Result<(), ExecError> {
    let vm = ctx.vm;
    run.finish_requested.store(true, Ordering::Release);
    if counted {
        // A mutator-led pause must wait for the marker threads to stand
        // down before touching the gray stack; the coordinator joins
        // them and flips `markers_idle` (spawning them first if it has
        // not yet caught up with this cycle — they exit immediately on
        // the request above).
        let mut cs = run.mx.lock().unwrap();
        run.cv.notify_all(); // wake the coordinator if it hasn't started this cycle yet
        while !cs.markers_idle {
            cs = run.cv.wait(cs).unwrap();
        }
    }
    // A coordinator-led pause never waits: marker threads exist only
    // inside the coordinator's own spawn/join section, so none can be
    // running here — but `markers_idle` may legitimately read false if
    // a snapshot pause opened a *newer* cycle between the coordinator
    // joining its markers and winning the request CAS. Waiting would
    // deadlock on itself; draining sequentially below is sound either
    // way.
    let pending = run.pending.lock().unwrap().take().expect("final pause without an open cycle");
    let mark_concurrent = t0.saturating_duration_since(pending.mark_started);

    if !forced {
        let mut last = ctx.last_gc_allocations.lock().unwrap();
        if *last == Some(allocs_now) {
            // No allocation progress since the previous completed
            // cycle: the heap is genuinely full. (Snapshot pauses never
            // run this check — they free nothing by design.)
            return Err(ExecError::Trap(VmTrap::OutOfMemory));
        }
        *last = Some(allocs_now);
    }

    cms_finish_mark(ctx, heap, run);

    if ctx.options.oracle && vm.shadow.is_some() {
        if let Err(msg) = par_oracle_check(ctx) {
            let (fs, fe) = vm.from_space();
            let free = vm.free.load(R);
            return Err(ExecError::Oracle(format!(
                "at final pause (from=[{fs},{fe}) free={free}): {msg}"
            )));
        }
        if let Err(msg) = cms_shadow_verify(ctx, heap) {
            return Err(ExecError::Oracle(msg));
        }
    }

    let mut stats = cms_evacuate(ctx, heap);
    if ctx.options.oracle && vm.shadow.is_some() {
        if let Err(msg) = par_oracle_check(ctx) {
            let (fs, fe) = vm.from_space();
            let free = vm.free.load(R);
            return Err(ExecError::Oracle(format!(
                "after evacuation (from=[{fs},{fe}) free={free}): {msg}"
            )));
        }
    }
    heap.marking.store(false, Ordering::Release);
    stats.handshake_time = handshake_time;
    stats.cms_cycle = true;
    stats.snapshot_pause = pending.snapshot_pause;
    stats.mark_concurrent = mark_concurrent;
    stats.satb_drained = heap.satb_drained.load(R) - pending.satb_drained_start;
    stats.roots_killed += pending.roots_killed;
    stats.float_words_avoided += pending.float_words_avoided;
    stats.parked_at_polls = ctx.poll_parks.swap(0, R);
    stats.parked_at_allocs = ctx.alloc_parks.swap(0, R);
    stats.total_time = t0.elapsed();
    ctx.gc_log.lock().unwrap().push(stats);
    Ok(())
}

/// Sequentially drains the leftover gray stack and every flushed SATB
/// buffer to transitive closure (world stopped). After this, the mark
/// bitmap covers everything reachable at the snapshot plus everything
/// allocated since — a superset of everything any live root can reach.
fn cms_finish_mark(ctx: &RunCtx<'_>, heap: &CmsHeap, run: &CmsRun) {
    let vm = ctx.vm;
    let (from_start, from_end) = vm.from_space();
    let mut gray = std::mem::take(&mut *run.gray.lock().unwrap());
    loop {
        while let Some(addr) = gray.pop() {
            scan_mark(vm, heap, from_start, from_end, addr, &mut gray);
        }
        let taken = std::mem::take(&mut *heap.satb_sink.lock().unwrap());
        if taken.is_empty() {
            break;
        }
        heap.satb_drained.fetch_add(taken.len() as u64, R);
        gray.extend(taken.into_iter().filter(|&v| mark_value(heap, from_start, from_end, v)));
    }
    run.in_flight.store(0, Ordering::SeqCst);
}

/// The cycle's shadow verification: a sequential trace from the
/// *current* roots — the bit-identical reachable set a full
/// stop-the-world collection at this pause would copy — asserting that
/// every reachable object is marked. This is the oracle that catches a
/// broken deletion barrier: a dropped or reordered SATB enqueue leaves
/// some snapshot-reachable object unmarked, and if any live path to it
/// remains, this walk finds it.
pub(crate) fn cms_shadow_verify(ctx: &RunCtx<'_>, heap: &CmsHeap) -> Result<(), String> {
    let vm = ctx.vm;
    let (from_start, _) = vm.from_space();
    let free_now = vm.free.load(R);
    let mut visited: HashSet<i64> = HashSet::new();
    let mut stack: Vec<i64> = Vec::new();
    let reach = |stack: &mut Vec<i64>, visited: &mut HashSet<i64>, v: i64| {
        if v < from_start || v >= free_now || !visited.insert(v) {
            return Ok(());
        }
        if !heap.is_marked(v) {
            return Err(format!(
                "concurrent marking lost a reachable object: {v} is live at the final \
                 pause but unmarked (SATB invariant violated)"
            ));
        }
        stack.push(v);
        Ok(())
    };
    for g in gather_global_roots_in(&vm.module, vm.globals_start() as i64) {
        let RootRef::Mem(a) = g else { unreachable!("global root in a register") };
        reach(&mut stack, &mut visited, vm.word(a))?;
    }
    let mut cache = ctx.caches[0].lock().unwrap();
    for (tid, slot) in ctx.slots.iter().enumerate() {
        let slot = slot.lock().unwrap();
        let Some(snap) = slot.as_ref() else { continue };
        let world = ThreadWorld { vm, tid: tid as u32, snap };
        let mut roots = StackRoots::default();
        // A fresh, cache-free walk: the verifier must not trust the
        // watermark splices it is part of the net for.
        gather_thread_roots(
            &world,
            &mut cache,
            tid as u32,
            (snap.pc, snap.fp, snap.ap, snap.sp),
            &mut roots,
        );
        for &r in &roots.tidy {
            reach(&mut stack, &mut visited, read_root_snap(vm, snap, r))?;
        }
    }
    while let Some(addr) = stack.pop() {
        let header = vm.word(addr);
        let ty = vm.module.types.get(header_type_id(header));
        let len = match ty {
            HeapType::Array { .. } => vm.word(addr + 1),
            HeapType::Record { .. } => 0,
        };
        for off in ty.pointer_offset_iter(len as u32) {
            reach(&mut stack, &mut visited, vm.word(addr + i64::from(off)))?;
        }
    }
    Ok(())
}

/// Shared state of one bitmap evacuation.
struct CmsGc<'vm> {
    vm: &'vm ParMachine,
    heap: &'vm CmsHeap,
    /// To-space copy frontier.
    free: AtomicI64,
    to_end: i64,
    from_start: i64,
    /// The allocated from-space prefix (`vm.free` at the pause).
    from_used: i64,
    /// Next unclaimed chunk index.
    chunk_next: AtomicUsize,
    barrier: Barrier,
}

struct CmsWorkerReport {
    threads: Vec<(usize, Snapshot)>,
    objects: u64,
    words: u64,
    roots: u64,
    roots_killed: u64,
    float_words_avoided: u64,
    derived: u64,
    frames: u64,
    spliced: u64,
    decode: m3gc_core::decode::DecodeCounters,
    copy_time: Duration,
}

/// Follows a forwarding pointer installed by the copy phase. An
/// unforwarded header here means an unmarked object survived to the
/// rewrite — a marking bug the shadow verification reports first
/// whenever the oracle is armed.
fn forwarded(vm: &ParMachine, v: i64) -> i64 {
    let f = vm.word(v);
    assert!(f < 0, "unmarked object reached the cms rewrite at {v}");
    -(f + 1)
}

/// One evacuation worker: stack walk + un-derive, chunked bitmap copy,
/// forwarding rewrite, re-derive. Unlike the stop-the-world trace there
/// is no claim CAS and no work stealing — the mark bitmap already
/// holds the transitive closure, so the copy set is a static partition.
fn cms_evac_worker(
    gc: &CmsGc<'_>,
    cache_mx: &Mutex<DecodeCache>,
    watermarks: &[Mutex<StackCache>],
    verify: bool,
    w: usize,
    mut my: Part,
) -> CmsWorkerReport {
    let vm = gc.vm;
    let mut cache = cache_mx.lock().unwrap();
    let decode_before = cache.counters();
    let (mut roots_n, mut derived_n, mut frames_n, mut spliced_n) = (0u64, 0u64, 0u64, 0u64);
    let (mut killed_n, mut float_n) = (0u64, 0u64);
    let heap_used = (gc.from_start, gc.from_used);

    // Phase 1: walk my threads' stacks — only frames above each
    // thread's watermark are re-decoded; everything below was cached at
    // the snapshot pause — and un-derive. Killed slots are nulled here
    // (marking is over, so no SATB enqueue: a marked referent is still
    // copied this cycle and dies at the next one).
    for (tid, snap, roots) in &mut my {
        {
            let world = ThreadWorld { vm, tid: *tid as u32, snap };
            let regs = (snap.pc, snap.fp, snap.ap, snap.sp);
            let mut wm = watermarks[*tid].lock().unwrap();
            gather_thread_roots_cached(&world, &mut cache, *tid as u32, regs, &mut wm, roots);
            if verify {
                verify_spliced_roots(&world, &mut cache, *tid as u32, regs, roots);
            }
        }
        un_derive_snap(vm, snap, roots);
        let (rk, fw) = apply_kills_par(vm, roots, heap_used);
        killed_n += rk;
        float_n += fw;
        roots_n += roots.tidy.len() as u64;
        derived_n += roots.derivations.len() as u64;
        frames_n += roots.frames as u64;
        spliced_n += roots.frames_spliced as u64;
    }
    gc.barrier.wait();
    let t_copy = Instant::now();

    // Phase 2: chunked bitmap copy. Each chunk's marked headers belong
    // to exactly one worker, so plain stores suffice; the next barrier
    // publishes every forwarding pointer. TLAB holes are zeroed words —
    // never marked, never visited.
    let mut copied: Vec<i64> = Vec::new();
    let (mut objects, mut words_copied) = (0u64, 0u64);
    let span = gc.from_used - gc.from_start;
    let n_chunks = ((span + CHUNK_WORDS - 1) / CHUNK_WORDS) as usize;
    loop {
        let c = gc.chunk_next.fetch_add(1, R);
        if c >= n_chunks {
            break;
        }
        let lo = gc.from_start + c as i64 * CHUNK_WORDS;
        let hi = (lo + CHUNK_WORDS).min(gc.from_used);
        gc.heap.for_each_marked(lo, hi, |addr| {
            let header = vm.word(addr);
            assert!(header >= 0, "mark bit on a non-header word at {addr}");
            let ty = vm.module.types.get(header_type_id(header));
            let len = match ty {
                HeapType::Array { .. } => vm.word(addr + 1),
                HeapType::Record { .. } => 0,
            };
            let obj_words = i64::from(ty.object_words(len as u32));
            let new = gc.free.fetch_add(obj_words, R);
            assert!(new + obj_words <= gc.to_end, "to-space overflow during cms evacuation");
            for off in 0..obj_words {
                vm.set_word(new + off, vm.word(addr + off));
            }
            if let Some(sh) = &vm.shadow {
                sh.copy_words(addr, new, obj_words);
            }
            vm.set_word(addr, -(new + 1));
            copied.push(new);
            objects += 1;
            words_copied += obj_words as u64;
        });
    }
    gc.barrier.wait();

    // Phase 3: rewrite my copied objects' pointer fields, my threads'
    // tidy roots, and (worker 0) the globals through plain forwarding
    // loads.
    for &new in &copied {
        let header = vm.word(new);
        let ty = vm.module.types.get(header_type_id(header));
        let len = match ty {
            HeapType::Array { .. } => vm.word(new + 1),
            HeapType::Record { .. } => 0,
        };
        for off in ty.pointer_offset_iter(len as u32) {
            let slot = new + i64::from(off);
            let v = vm.word(slot);
            if v >= gc.from_start && v < gc.from_used {
                vm.set_word(slot, forwarded(vm, v));
            }
        }
    }
    if w == 0 {
        for g in gather_global_roots_in(&vm.module, vm.globals_start() as i64) {
            let RootRef::Mem(a) = g else { unreachable!("global root in a register") };
            let v = vm.word(a);
            if v >= gc.from_start && v < gc.from_used {
                vm.set_word(a, forwarded(vm, v));
            }
        }
        roots_n += vm.module.global_ptr_roots.len() as u64;
    }
    for (_, snap, roots) in &mut my {
        for i in 0..roots.tidy.len() {
            let r = roots.tidy[i];
            let v = read_root_snap(vm, snap, r);
            if v >= gc.from_start && v < gc.from_used {
                write_root_snap(vm, snap, r, forwarded(vm, v));
            }
        }
    }
    gc.barrier.wait();
    let copy_time = t_copy.elapsed();

    // Phase 4: re-derive, reverse of the un-derive order.
    for (_, snap, roots) in my.iter_mut().rev() {
        re_derive_snap(vm, snap, roots);
    }

    CmsWorkerReport {
        threads: my.into_iter().map(|(tid, snap, _)| (tid, snap)).collect(),
        objects,
        words: words_copied,
        roots: roots_n,
        roots_killed: killed_n,
        float_words_avoided: float_n,
        derived: derived_n,
        frames: frames_n,
        spliced: spliced_n,
        decode: cache.counters().since(decode_before),
        copy_time,
    }
}

/// The final pause's parallel evacuation of the marked set (leader
/// only, world stopped). Mirrors `collect_parallel`'s thread-dealing
/// and snapshot publication, but the copy itself is bitmap-driven.
fn cms_evacuate(ctx: &RunCtx<'_>, heap: &CmsHeap) -> ParGcStats {
    let vm = ctx.vm;
    let workers = ctx.caches.len();
    let mut parts: Vec<Part> = (0..workers).map(|_| Vec::new()).collect();
    let mut n_threads = 0usize;
    for (tid, slot) in ctx.slots.iter().enumerate() {
        if let Some(snap) = slot.lock().unwrap().take() {
            parts[n_threads % workers].push((tid, snap, StackRoots::default()));
            n_threads += 1;
        }
    }

    let (from_start, _) = vm.from_space();
    let (to_start, to_end) = vm.to_space();
    let gc = CmsGc {
        vm,
        heap,
        free: AtomicI64::new(to_start),
        to_end,
        from_start,
        from_used: vm.free.load(R),
        chunk_next: AtomicUsize::new(0),
        barrier: Barrier::new(workers),
    };

    let mut reports: Vec<CmsWorkerReport> = Vec::with_capacity(workers);
    {
        let mut parts = parts.into_iter();
        let part0 = parts.next().expect("worker 0 partition");
        let verify = ctx.options.oracle;
        std::thread::scope(|s| {
            let gc = &gc;
            let handles: Vec<_> = parts
                .enumerate()
                .map(|(i, part)| {
                    let cache = &ctx.caches[i + 1];
                    let wms = &ctx.watermarks;
                    s.spawn(move || cms_evac_worker(gc, cache, wms, verify, i + 1, part))
                })
                .collect();
            reports.push(cms_evac_worker(gc, &ctx.caches[0], &ctx.watermarks, verify, 0, part0));
            for h in handles {
                reports.push(h.join().expect("cms evacuation worker panicked"));
            }
        });
    }

    for report in &reports {
        for (tid, snap) in &report.threads {
            *ctx.slots[*tid].lock().unwrap() = Some(snap.clone());
        }
    }
    vm.finish_collection(gc.free.load(R));

    let mut stats = ParGcStats {
        per_worker_objects: reports.iter().map(|r| r.objects).collect(),
        per_worker_words: reports.iter().map(|r| r.words).collect(),
        steals: vec![0; workers], // no stealing: the bitmap partitions the copy
        stacks_traced: n_threads as u64,
        ..ParGcStats::default()
    };
    for r in &reports {
        stats.objects_copied += r.objects;
        stats.words_copied += r.words;
        stats.roots += r.roots;
        stats.roots_killed += r.roots_killed;
        stats.float_words_avoided += r.float_words_avoided;
        stats.derived_updated += r.derived;
        stats.frames_traced += r.frames;
        stats.frames_spliced += r.spliced;
        stats.decode_hits += r.decode.hits;
        stats.decode_misses += r.decode.misses;
        stats.decode_ops += r.decode.points_decoded;
    }
    stats.copy_time = reports[0].copy_time;
    stats
}
