//! Parallel stop-the-world collection over OS-thread mutators.
//!
//! Mutators run on real `std::thread`s against a shared
//! [`ParMachine`]. A collection proceeds in three acts:
//!
//! 1. **Safepoint handshake.** The thread whose allocation fails CASes
//!    the machine's `gc_request` flag; winning the CAS makes it the
//!    *leader*. Every other mutator notices the flag at its next
//!    gc-point — an allocation site or one of the loop back-edge polls
//!    `codegen::gcpoints` inserts (§5.3: the explicit loop gc-points
//!    bound how far a thread can run before reaching a describable
//!    state, so handshake latency is bounded by the longest
//!    gc-point-free path, not by loop trip counts). A parking thread
//!    deposits a [`Snapshot`] of its registers and frame cursor, then
//!    blocks on a condvar. The leader waits until every live mutator
//!    has parked.
//! 2. **Parallel copy.** The leader becomes gc worker 0 and spawns
//!    `gc_workers - 1` helpers. Parked threads are dealt to workers
//!    round-robin; each worker walks its threads' stacks (through the
//!    shared [`RootSource`] trace code, against the deposited
//!    snapshots) and un-derives their derived values. After a barrier,
//!    workers forward their threads' roots (worker 0 also takes the
//!    globals) and trace the object graph with work stealing: each
//!    worker owns a deque of to-space objects still holding from-space
//!    pointers, pops its own work LIFO, and steals FIFO from others
//!    when empty. Forwarding claims an object by CASing its header to
//!    a BUSY sentinel; the winner bumps the shared to-space frontier
//!    with a fetch-add, copies the words, and publishes `-(new+1)`
//!    with release ordering. Losers spin (yielding) until the
//!    forwarding pointer appears. A shared pending-object counter
//!    detects termination.
//! 3. **Release.** After a final barrier each worker re-derives its
//!    threads' derived values in exactly the reverse order, the leader
//!    flips the semispaces, clears the request flag and bumps the
//!    handshake generation; parked threads wake, reload their (now
//!    updated) snapshots and resume — the failed allocation simply
//!    retries.
//!
//! Decode caches are per-worker and persistent across collections; all
//! of them share one `Arc`'d [`DecoderIndex`] of the module's encoded
//! tables, so the memoization cost is paid per worker but the parsed
//! index is built once.
//!
//! The gc-map precision oracle (when enabled) runs on the leader,
//! single-threaded, after the handshake completes and before any
//! object moves — every thread's deposited snapshot is validated
//! against the shadow ground truth exactly as in the single-threaded
//! scheduler.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use m3gc_core::decode::{DecodeCache, DecodeCounters, DecoderIndex};
use m3gc_jit::{JitEngine, JitSummary};
use m3gc_vm::isa::NUM_REGS;
use m3gc_vm::machine::VmTrap;
use m3gc_vm::module::VmModule;
use m3gc_vm::shadow::Tag;
use m3gc_vm::{Mutator, ParMachine, ParStep};

use crate::evac::{forward_root_par, next_work, scan_object, scan_region, GcCtx, WorkerLocal};
use crate::options::RuntimeOptions;
use crate::oracle::check_entries;
use crate::scheduler::ExecError;
use crate::trace::{
    gather_global_roots_in, gather_thread_roots, gather_thread_roots_cached, verify_spliced_roots,
    RootRef, RootSource, StackCache, StackRoots,
};

/// Relaxed shorthand for counters; cross-thread ordering comes from the
/// handshake mutex/condvar and the forwarding CAS protocol.
const R: Ordering = Ordering::Relaxed;

/// A mutator's machine state as deposited at a safepoint, and as
/// reloaded (post-collection) when it resumes.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// General-purpose registers.
    pub regs: [i64; NUM_REGS],
    /// Shadow tags for the registers (oracle input).
    pub reg_tags: [Tag; NUM_REGS],
    /// Frame pointer.
    pub fp: i64,
    /// Stack pointer.
    pub sp: i64,
    /// Argument pointer.
    pub ap: i64,
    /// The gc-point pc the thread parked at.
    pub pc: u32,
}

impl Snapshot {
    pub(crate) fn of(mu: &Mutator) -> Snapshot {
        Snapshot {
            regs: mu.regs,
            reg_tags: mu.reg_tags,
            fp: mu.fp,
            sp: mu.sp,
            ap: mu.ap,
            pc: mu.pc,
        }
    }

    pub(crate) fn restore(&self, mu: &mut Mutator) {
        mu.regs = self.regs;
        mu.reg_tags = self.reg_tags;
        mu.fp = self.fp;
        mu.sp = self.sp;
        mu.ap = self.ap;
        mu.pc = self.pc;
    }
}

/// Statistics for one parallel collection.
#[derive(Debug, Clone, Default)]
pub struct ParGcStats {
    /// From the winning collection request to every mutator parked.
    pub handshake_time: Duration,
    /// The parallel evacuation (root forwarding + work-stealing trace).
    pub copy_time: Duration,
    /// Whole collection (handshake through release).
    pub total_time: Duration,
    /// Objects evacuated (all workers).
    pub objects_copied: u64,
    /// Words evacuated (all workers).
    pub words_copied: u64,
    /// Objects evacuated per worker.
    pub per_worker_objects: Vec<u64>,
    /// Words evacuated per worker.
    pub per_worker_words: Vec<u64>,
    /// Successful steals per worker.
    pub steals: Vec<u64>,
    /// Tidy root references processed.
    pub roots: u64,
    /// Killed slots nulled before tracing (liveness-pruned maps).
    pub roots_killed: u64,
    /// Words of heap the nulled slots referenced directly.
    pub float_words_avoided: u64,
    /// Derived values un-derived and re-derived.
    pub derived_updated: u64,
    /// Stack frames traced (spliced frames included).
    pub frames_traced: u64,
    /// Of `frames_traced`, frames spliced from the per-thread watermark
    /// caches without decoding or re-resolving.
    pub frames_spliced: u64,
    /// Decode-cache memo hits during the stack walks.
    pub decode_hits: u64,
    /// Decode-cache misses.
    pub decode_misses: u64,
    /// Individual gc-point decode operations.
    pub decode_ops: u64,
    /// Mutators that parked at an explicit loop poll for this cycle.
    pub parked_at_polls: u64,
    /// Mutators that parked at an allocation gc-point for this cycle.
    pub parked_at_allocs: u64,
    /// Deposited snapshots traced (in serve mode: requests parked at
    /// safepoints, queued greens included).
    pub stacks_traced: u64,
    /// Escaped regions evacuated (promoted into the shared heap) and
    /// reset by this collection.
    pub regions_evacuated: u64,
    /// Live non-escaped regions linearly scanned in place.
    pub regions_scanned: u64,
    /// Objects promoted out of escaped regions.
    pub region_objects_promoted: u64,
    /// Words promoted out of escaped regions.
    pub region_words_promoted: u64,
    /// Words reclaimed by resetting escaped regions after the trace.
    pub region_words_reset: u64,
    /// True if this entry describes a concurrent-marking cycle: the
    /// pause fields below are populated and `total_time` is the *final*
    /// pause only (the cycle's whole stop-the-world cost).
    pub cms_cycle: bool,
    /// Duration of the cycle-opening snapshot pause (cms only).
    pub snapshot_pause: Duration,
    /// Wall-clock time marking ran concurrently with the mutators,
    /// from snapshot-pause end to final-pause start (cms only).
    pub mark_concurrent: Duration,
    /// SATB deletion-barrier entries drained during this cycle,
    /// concurrent draining and the final-pause residue together (cms
    /// only).
    pub satb_drained: u64,
    /// True if this cycle evacuated its cset concurrently
    /// (`--conc-evac`): the fields below are populated and
    /// `total_time` is the root/derivation-fixup final pause only.
    pub evac_cycle: bool,
    /// Duration of the evacuation-select handshake (conc-evac only).
    pub evac_select_pause: Duration,
    /// Wall-clock time the copiers/updater overlapped the mutators,
    /// select-handshake end to final-pause start (conc-evac only).
    pub evac_conc_time: Duration,
    /// Regions in this cycle's evacuation set.
    pub evac_regions: u64,
    /// Regions pinned out of the cset by frame derivations.
    pub evac_pinned: u64,
    /// Objects copied concurrently (mutators running).
    pub evac_objects: u64,
    /// Words copied concurrently.
    pub evac_words: u64,
    /// Stale references healed in place by mutator loads.
    pub evac_healed_loads: u64,
    /// Mutator stores redirected or replayed into published copies.
    pub evac_healed_stores: u64,
}

/// Result of a completed parallel run.
#[derive(Debug, Clone, Default)]
pub struct ParOutcome {
    /// All mutator outputs concatenated in tid order.
    pub output: String,
    /// Per-mutator outputs.
    pub outputs: Vec<String>,
    /// Collections performed.
    pub collections: u64,
    /// Objects allocated.
    pub allocations: u64,
    /// Words allocated.
    pub words_allocated: u64,
    /// TLAB refills (one shared-frontier CAS each).
    pub tlab_refills: u64,
    /// Allocations served by the TLAB fast path (no shared CAS).
    pub tlab_allocs: u64,
    /// Words discarded from partial TLABs at retirement.
    pub tlab_waste_words: u64,
    /// SATB deletion-barrier enqueues (cms runs only).
    pub satb_enqueued: u64,
    /// SATB entries drained by marking (cms runs only).
    pub satb_drained: u64,
    /// Objects evacuated concurrently with the mutators (conc-evac).
    pub evac_objects: u64,
    /// Words evacuated concurrently with the mutators (conc-evac).
    pub evac_words: u64,
    /// Stale references healed in place by mutator loads (conc-evac).
    pub evac_healed_loads: u64,
    /// Stores redirected/replayed into published copies (conc-evac).
    pub evac_healed_stores: u64,
    /// Instructions executed (all mutators).
    pub steps: u64,
    /// Per-collection statistics.
    pub gc_each: Vec<ParGcStats>,
}

/// A stack-walk view of one parked mutator: shared memory plus its
/// deposited register snapshot.
pub(crate) struct ThreadWorld<'a> {
    pub(crate) vm: &'a ParMachine,
    pub(crate) tid: u32,
    pub(crate) snap: &'a Snapshot,
}

impl RootSource for ThreadWorld<'_> {
    fn mem_word(&self, addr: i64) -> i64 {
        self.vm.word(addr)
    }

    fn reg_word(&self, thread: u32, reg: u8) -> i64 {
        debug_assert_eq!(thread, self.tid, "stack walk crossed threads");
        self.snap.regs[reg as usize]
    }

    fn module(&self) -> &VmModule {
        &self.vm.module
    }

    fn resolve_retpc(&self, retpc: i64) -> u32 {
        self.vm.resolve_retpc(retpc)
    }
}

pub(crate) fn read_root_snap(vm: &ParMachine, snap: &Snapshot, r: RootRef) -> i64 {
    match r {
        RootRef::Mem(a) => vm.word(a),
        RootRef::Reg { reg, .. } => snap.regs[reg as usize],
    }
}

pub(crate) fn write_root_snap(vm: &ParMachine, snap: &mut Snapshot, r: RootRef, v: i64) {
    match r {
        RootRef::Mem(a) => vm.set_word(a, v),
        RootRef::Reg { reg, .. } => snap.regs[reg as usize] = v,
    }
}

/// Step 1 of the derived-value update (§3) against a snapshot, in
/// un-derive order (callee frames first, derived before base).
pub(crate) fn un_derive_snap(vm: &ParMachine, snap: &mut Snapshot, roots: &StackRoots) {
    for d in &roots.derivations {
        let mut v = read_root_snap(vm, snap, d.target);
        for &(b, sign) in &d.bases {
            v -= sign.factor() * read_root_snap(vm, snap, b);
        }
        write_root_snap(vm, snap, d.target, v);
    }
}

/// Step 2: `derived := E + Σ ±base` from the relocated bases, in
/// exactly the reverse of the un-derive order.
pub(crate) fn re_derive_snap(vm: &ParMachine, snap: &mut Snapshot, roots: &StackRoots) {
    for d in roots.derivations.iter().rev() {
        let mut v = read_root_snap(vm, snap, d.target);
        for &(b, sign) in &d.bases {
            v += sign.factor() * read_root_snap(vm, snap, b);
        }
        write_root_snap(vm, snap, d.target, v);
    }
}

/// Handshake coordination state, guarded by [`Coord::state`].
pub(crate) struct CoordState {
    /// OS threads still running (decremented on finish/death). In serve
    /// mode this counts scheduler threads, not green requests.
    pub(crate) active: usize,
    /// Threads currently parked for the pending request.
    pub(crate) parked: usize,
    /// Bumped by the leader to release parked threads.
    pub(crate) generation: u64,
    /// Mirrors [`Coord::halt`] for checks already under the lock.
    pub(crate) halt: bool,
}

pub(crate) struct Coord {
    pub(crate) state: Mutex<CoordState>,
    pub(crate) cv: Condvar,
    /// Cheap fast-path halt check for mutator loops.
    pub(crate) halt: AtomicBool,
    /// First error wins; everyone else shuts down quietly.
    pub(crate) error: Mutex<Option<ExecError>>,
}

/// Everything the mutator threads and gc workers share for one run.
pub(crate) struct RunCtx<'vm> {
    pub(crate) vm: &'vm ParMachine,
    pub(crate) options: RuntimeOptions,
    pub(crate) coord: Coord,
    /// One snapshot slot per mutator, filled while parked. In serve mode
    /// there is one slot per *green* request — a descheduled green's
    /// snapshot stays deposited here, so collections trace queued
    /// requests exactly like parked OS threads.
    pub(crate) slots: Vec<Mutex<Option<Snapshot>>>,
    /// One watermark cache per mutator, persistent across collections.
    /// Keyed by tid (not worker) because the round-robin deal can hand a
    /// thread to a different worker each cycle.
    pub(crate) watermarks: Vec<Mutex<StackCache>>,
    /// Persistent per-worker decode caches (shared `DecoderIndex`).
    pub(crate) caches: Vec<Mutex<DecodeCache>>,
    /// Allocation count at the previous (unforced) collection — the
    /// no-progress out-of-memory detector, shared by whichever thread
    /// happens to lead.
    pub(crate) last_gc_allocations: Mutex<Option<u64>>,
    pub(crate) gc_log: Mutex<Vec<ParGcStats>>,
    /// Per-cycle park-site counters, read+reset by the leader.
    pub(crate) poll_parks: AtomicU64,
    pub(crate) alloc_parks: AtomicU64,
    /// Concurrent-marking cycle state (cms strategy only).
    pub(crate) cms: Option<crate::cms::CmsRun>,
    /// Native baseline engine (`--jit`); mutators run
    /// [`JitEngine::run_burst`] instead of stepping the interpreter.
    pub(crate) jit: Option<Arc<JitEngine>>,
}

impl<'vm> RunCtx<'vm> {
    /// Builds the shared run state: `slots` snapshot slots (one per
    /// mutator — greens in serve mode), `active` OS threads in the
    /// handshake, one decode cache per gc worker.
    pub(crate) fn new(
        vm: &'vm ParMachine,
        options: RuntimeOptions,
        slots: usize,
        active: usize,
    ) -> RunCtx<'vm> {
        let workers = options.gc_workers.max(1);
        let index = Arc::new(DecoderIndex::build(&vm.module.gc_maps).expect("valid gc maps"));
        let caches = (0..workers)
            .map(|_| {
                let mut c = DecodeCache::with_shared_index(Arc::clone(&index));
                c.bind_module(vm.module_token());
                Mutex::new(c)
            })
            .collect();
        RunCtx {
            vm,
            options,
            coord: Coord {
                state: Mutex::new(CoordState { active, parked: 0, generation: 0, halt: false }),
                cv: Condvar::new(),
                halt: AtomicBool::new(false),
                error: Mutex::new(None),
            },
            slots: (0..slots).map(|_| Mutex::new(None)).collect(),
            watermarks: (0..slots).map(|_| Mutex::new(StackCache::default())).collect(),
            caches,
            last_gc_allocations: Mutex::new(None),
            gc_log: Mutex::new(Vec::new()),
            poll_parks: AtomicU64::new(0),
            alloc_parks: AtomicU64::new(0),
            cms: vm.cms.as_ref().map(|_| crate::cms::CmsRun::new(options.conc_workers.max(1))),
            jit: None,
        }
    }
}

/// A worker's thread partition: (tid, snapshot, gathered roots).
pub(crate) type Part = Vec<(usize, Snapshot, StackRoots)>;

/// Nulls a parked thread's killed slots (the parallel analogue of
/// `crate::collector::apply_kills`): each is a frame word of this
/// thread's own stack region whose tables prove the reference dead, so
/// no other worker touches it and nothing has moved yet when this runs
/// (phase 1). Returns `(roots_killed, float_words_avoided)` — the float
/// estimate counts the directly referenced object's words when the
/// referent lies in the allocated from-space prefix `heap`.
pub(crate) fn apply_kills_par(vm: &ParMachine, roots: &StackRoots, heap: (i64, i64)) -> (u64, u64) {
    use m3gc_core::heap::{header_type_id, HeapType};
    let (hs, he) = heap;
    let mut roots_killed = 0u64;
    let mut float_words = 0u64;
    for &r in &roots.killed {
        let RootRef::Mem(a) = r else { continue };
        let v = vm.word(a);
        if v == 0 {
            continue;
        }
        roots_killed += 1;
        if (hs..he).contains(&v) {
            let header = vm.word(v);
            if header >= 0 {
                let ty = vm.module.types.get(header_type_id(header));
                let len = match ty {
                    HeapType::Array { .. } => vm.word(v + 1),
                    HeapType::Record { .. } => 0,
                };
                float_words += u64::from(ty.object_words(len as u32));
            }
        }
        vm.set_word(a, 0);
        if let Some(sh) = &vm.shadow {
            sh.set_mem(a, Tag::NonPtr);
        }
    }
    (roots_killed, float_words)
}

struct WorkerReport {
    threads: Vec<(usize, Snapshot)>,
    objects: u64,
    words: u64,
    region_objects: u64,
    region_words: u64,
    roots: u64,
    roots_killed: u64,
    float_words_avoided: u64,
    derived: u64,
    frames: u64,
    spliced: u64,
    decode: DecodeCounters,
    copy_time: Duration,
}

/// One gc worker's whole collection: scan+un-derive its threads,
/// forward roots, trace with stealing, re-derive. Barriers separate
/// the phases — no object may move before every un-derive is done, and
/// no re-derive may run before every move is done.
fn gc_worker(
    gc: &GcCtx<'_>,
    cache_mx: &Mutex<DecodeCache>,
    watermarks: &[Mutex<StackCache>],
    verify: bool,
    w: usize,
    mut my: Part,
) -> WorkerReport {
    let vm = gc.vm;
    let mut cache = cache_mx.lock().unwrap();
    let decode_before = cache.counters();
    let mut local = WorkerLocal::default();
    let (mut roots_n, mut derived_n, mut frames_n, mut spliced_n) = (0u64, 0u64, 0u64, 0u64);
    let (mut killed_n, mut float_n) = (0u64, 0u64);
    let heap = {
        let (s, _) = vm.from_space();
        (s, vm.free.load(R))
    };

    // Phase 1: walk my threads' stacks (splicing unchanged cold frames
    // from the per-thread watermark caches), un-derive, and null the
    // killed slots before anything is forwarded.
    for (tid, snap, roots) in &mut my {
        {
            let world = ThreadWorld { vm, tid: *tid as u32, snap };
            let regs = (snap.pc, snap.fp, snap.ap, snap.sp);
            let mut wm = watermarks[*tid].lock().unwrap();
            gather_thread_roots_cached(&world, &mut cache, *tid as u32, regs, &mut wm, roots);
            if verify {
                verify_spliced_roots(&world, &mut cache, *tid as u32, regs, roots);
            }
        }
        un_derive_snap(vm, snap, roots);
        let (rk, fw) = apply_kills_par(vm, roots, heap);
        killed_n += rk;
        float_n += fw;
        roots_n += roots.tidy.len() as u64;
        derived_n += roots.derivations.len() as u64;
        frames_n += roots.frames as u64;
        spliced_n += roots.frames_spliced as u64;
    }
    gc.barrier.wait();
    let t_copy = Instant::now();

    // Phase 2: forward roots. Worker 0 owns the globals.
    if w == 0 {
        for g in gather_global_roots_in(&vm.module, vm.globals_start() as i64) {
            let RootRef::Mem(a) = g else { unreachable!("global root in a register") };
            if let Some(new) = forward_root_par(gc, w, &mut local, vm.word(a)) {
                vm.set_word(a, new);
            }
        }
        roots_n += vm.module.global_ptr_roots.len() as u64;
    }
    for (_, snap, roots) in &mut my {
        for i in 0..roots.tidy.len() {
            let r = roots.tidy[i];
            let v = read_root_snap(vm, snap, r);
            if let Some(new) = forward_root_par(gc, w, &mut local, v) {
                write_root_snap(vm, snap, r, new);
            }
        }
    }
    // Live non-escaped regions are extra root sets: their objects stay
    // put, but pointer slots into the evacuation set must be forwarded.
    // Workers pull regions from the shared queue until it is dry.
    loop {
        let slot = gc.region_scan.lock().unwrap().pop();
        match slot {
            Some(s) => roots_n += scan_region(gc, w, &mut local, s),
            None => break,
        }
    }
    gc.barrier.wait();

    // Phase 3: work-stealing trace to transitive closure.
    loop {
        match next_work(gc, w) {
            Some(addr) => {
                scan_object(gc, w, &mut local, addr);
                gc.pending.fetch_sub(1, Ordering::SeqCst);
            }
            None => {
                if gc.pending.load(Ordering::SeqCst) == 0 {
                    break;
                }
                std::thread::yield_now();
            }
        }
    }
    gc.barrier.wait();
    let copy_time = t_copy.elapsed();

    // Phase 4: re-derive, reverse of the un-derive order.
    for (_, snap, roots) in my.iter_mut().rev() {
        re_derive_snap(vm, snap, roots);
    }

    WorkerReport {
        threads: my.into_iter().map(|(tid, snap, _)| (tid, snap)).collect(),
        objects: local.objects,
        words: local.words,
        region_objects: local.region_objects,
        region_words: local.region_words,
        roots: roots_n,
        roots_killed: killed_n,
        float_words_avoided: float_n,
        derived: derived_n,
        frames: frames_n,
        spliced: spliced_n,
        decode: cache.counters().since(decode_before),
        copy_time,
    }
}

/// The leader's collection proper: deal parked threads to workers, run
/// the copy in a scoped thread pool (leader = worker 0), write the
/// updated snapshots back and flip the spaces.
pub(crate) fn collect_parallel(
    ctx: &RunCtx<'_>,
    handshake_time: Duration,
    t0: Instant,
) -> ParGcStats {
    let vm = ctx.vm;
    let workers = ctx.caches.len();
    let mut parts: Vec<Part> = (0..workers).map(|_| Vec::new()).collect();
    let mut n_threads = 0usize;
    for (tid, slot) in ctx.slots.iter().enumerate() {
        if let Some(snap) = slot.lock().unwrap().take() {
            parts[n_threads % workers].push((tid, snap, StackRoots::default()));
            n_threads += 1;
        }
    }

    let gc = GcCtx::new(vm, workers);
    let regions_scanned = gc.region_scan.lock().unwrap().len() as u64;

    let mut reports: Vec<WorkerReport> = Vec::with_capacity(workers);
    {
        let mut parts = parts.into_iter();
        let part0 = parts.next().expect("worker 0 partition");
        let verify = ctx.options.oracle;
        std::thread::scope(|s| {
            let gc = &gc;
            let handles: Vec<_> = parts
                .enumerate()
                .map(|(i, part)| {
                    let cache = &ctx.caches[i + 1];
                    let wms = &ctx.watermarks;
                    s.spawn(move || gc_worker(gc, cache, wms, verify, i + 1, part))
                })
                .collect();
            reports.push(gc_worker(gc, &ctx.caches[0], &ctx.watermarks, verify, 0, part0));
            for h in handles {
                reports.push(h.join().expect("gc worker panicked"));
            }
        });
    }

    // Publish updated snapshots back to the park slots.
    for report in &reports {
        for (tid, snap) in &report.threads {
            *ctx.slots[*tid].lock().unwrap() = Some(snap.clone());
        }
    }
    vm.finish_collection(gc.free.load(R));

    // Every escaped region has been fully evacuated: its reachable
    // objects live in the shared heap and every surviving reference was
    // rewritten by the trace. Reset them — zombies become free slots,
    // escaped-but-live regions continue as empty regions for their
    // still-running request.
    let mut region_words_reset = 0u64;
    for &(slot, _, _) in &gc.evac_regions {
        region_words_reset += vm.reset_region(slot) as u64;
    }

    let mut stats = ParGcStats {
        handshake_time,
        per_worker_objects: reports.iter().map(|r| r.objects).collect(),
        per_worker_words: reports.iter().map(|r| r.words).collect(),
        steals: gc.steals.iter().map(|s| s.load(R)).collect(),
        parked_at_polls: ctx.poll_parks.swap(0, R),
        parked_at_allocs: ctx.alloc_parks.swap(0, R),
        stacks_traced: n_threads as u64,
        regions_evacuated: gc.evac_regions.len() as u64,
        regions_scanned,
        region_words_reset,
        ..ParGcStats::default()
    };
    for r in &reports {
        stats.objects_copied += r.objects;
        stats.words_copied += r.words;
        stats.region_objects_promoted += r.region_objects;
        stats.region_words_promoted += r.region_words;
        stats.roots += r.roots;
        stats.roots_killed += r.roots_killed;
        stats.float_words_avoided += r.float_words_avoided;
        stats.derived_updated += r.derived;
        stats.frames_traced += r.frames;
        stats.frames_spliced += r.spliced;
        stats.decode_hits += r.decode.hits;
        stats.decode_misses += r.decode.misses;
        stats.decode_ops += r.decode.points_decoded;
    }
    stats.copy_time = reports[0].copy_time;
    stats.total_time = t0.elapsed();
    stats
}

/// The leader's oracle pass: validate every parked thread's decoded
/// tables against the shadow ground truth, before anything moves.
pub(crate) fn par_oracle_check(ctx: &RunCtx<'_>) -> Result<(), String> {
    let vm = ctx.vm;
    let sh = vm.shadow.as_ref().expect("oracle requires shadow mode");
    let (from_start, _) = vm.from_space();
    // Legal pointer targets: the allocated from-space prefix plus the
    // used prefix of every live or escaped (zombie) region. Anything
    // else — free region slots included — is dead space, and a root
    // pointing there is a precision violation.
    let mut ranges: Vec<(i64, i64)> = vec![(from_start, vm.free.load(R))];
    if let Some(cms) = &vm.cms {
        // While a cset is being copied concurrently, healed references
        // legally point at published to-space copies.
        if cms.evacuating.load(Ordering::Acquire) {
            let (to_start, _) = vm.to_space();
            let evac_to = cms.evac_to.load(R);
            if evac_to > to_start {
                ranges.push((to_start, evac_to));
            }
        }
    }
    if vm.region_words() > 0 {
        for slot in 0..vm.mutators() {
            if vm.is_region_live(slot) || vm.is_region_escaped(slot) {
                let (base, _) = vm.region_bounds(slot);
                ranges.push((base, vm.region_top(slot)));
            }
        }
    }
    let globals = gather_global_roots_in(&vm.module, vm.globals_start() as i64);
    let mut cache = ctx.caches[0].lock().unwrap();
    let mut first = true;
    for (tid, slot) in ctx.slots.iter().enumerate() {
        let slot = slot.lock().unwrap();
        let Some(snap) = slot.as_ref() else { continue };
        let world = ThreadWorld { vm, tid: tid as u32, snap };
        let mut roots = StackRoots::default();
        gather_thread_roots(
            &world,
            &mut cache,
            tid as u32,
            (snap.pc, snap.fp, snap.ap, snap.sp),
            &mut roots,
        );
        let tag_of = |r: RootRef| match r {
            RootRef::Mem(a) => sh.mem_tag(a),
            RootRef::Reg { reg, .. } => snap.reg_tags[reg as usize],
        };
        let g: &[RootRef] = if first { &globals } else { &[] };
        first = false;
        // Mid-evacuation, roots legally still hold stale cset
        // addresses: healing is lazy, and the pause's own fixup
        // rewrites them right after this check.
        check_entries(&world, tag_of, &ranges, |v| vm.evac_root_forwarded(v), &roots, g)?;
    }
    Ok(())
}

/// Parks the calling mutator for a pending collection request. Returns
/// `true` if execution should resume, `false` on halt. A request that
/// was already serviced (or abandoned) by the time the lock is taken
/// resumes immediately without parking.
pub(crate) fn park(ctx: &RunCtx<'_>, mu: &mut Mutator) -> bool {
    let mut st = ctx.coord.state.lock().unwrap();
    if st.halt {
        return false;
    }
    if !ctx.vm.gc_request.load(R) {
        return true;
    }
    if ctx.vm.is_poll_pc(mu.pc) {
        ctx.poll_parks.fetch_add(1, R);
    } else {
        ctx.alloc_parks.fetch_add(1, R);
    }
    // Retire the TLAB before depositing: gc workers must see an exact
    // frontier, and after the flip the buffer would lie in dead space.
    ctx.vm.retire_tlab(mu);
    *ctx.slots[mu.tid].lock().unwrap() = Some(Snapshot::of(mu));
    st.parked += 1;
    ctx.coord.cv.notify_all();
    let gen = st.generation;
    while st.generation == gen {
        st = ctx.coord.cv.wait(st).unwrap();
    }
    let halted = st.halt;
    drop(st);
    if let Some(snap) = ctx.slots[mu.tid].lock().unwrap().take() {
        snap.restore(mu);
    }
    !halted
}

/// The winning requester's path: park self, wait for the handshake to
/// complete, run the oracle and the parallel collection, release
/// everyone. Returns `Ok(true)` to resume, `Ok(false)` on halt.
pub(crate) fn lead_collection(ctx: &RunCtx<'_>, mu: &mut Mutator) -> Result<bool, ExecError> {
    lead_collection_with(ctx, Some(mu))
}

/// Leads a collection from a thread with no mutator state — a serve
/// scheduler thread forcing a cycle to reclaim zombie regions. The
/// no-progress out-of-memory check is skipped (the heap is not
/// necessarily full; the collection was forced for slot reclaim).
pub(crate) fn lead_collection_idle(ctx: &RunCtx<'_>) -> Result<bool, ExecError> {
    lead_collection_with(ctx, None)
}

fn lead_collection_with(ctx: &RunCtx<'_>, mut mu: Option<&mut Mutator>) -> Result<bool, ExecError> {
    if ctx.cms.is_some() {
        // Concurrent-marking runs have a two-pause cycle (snapshot,
        // then final) instead of one monolithic stop-the-world.
        return crate::cms::cms_lead_collection(ctx, mu);
    }
    let t0 = Instant::now();
    let mut st = ctx.coord.state.lock().unwrap();
    if st.halt {
        // Don't collect during shutdown; withdraw the request.
        ctx.vm.gc_request.store(false, Ordering::Release);
        return Ok(false);
    }
    if let Some(mu) = mu.as_deref_mut() {
        if ctx.vm.is_poll_pc(mu.pc) {
            ctx.poll_parks.fetch_add(1, R);
        } else {
            ctx.alloc_parks.fetch_add(1, R);
        }
        // As in `park`: exact frontier and flushed counters before leading.
        ctx.vm.retire_tlab(mu);
        *ctx.slots[mu.tid].lock().unwrap() = Some(Snapshot::of(mu));
    }
    st.parked += 1;
    ctx.coord.cv.notify_all();
    while st.parked < st.active && !st.halt {
        st = ctx.coord.cv.wait(st).unwrap();
    }
    let halted = st.halt;
    let handshake_time = t0.elapsed();
    // Everyone is parked (or dead): the world is stopped. The lock can
    // be dropped — nothing changes until we bump the generation.
    drop(st);

    let mut result: Result<(), ExecError> = Ok(());
    if !halted {
        let vm = ctx.vm;
        let allocs_now = vm.allocations.load(R);
        let forced = mu.is_none() || allocs_now >= vm.force_gc_at.load(R);
        if forced {
            if let Some(every) = ctx.options.force_every_allocs {
                vm.force_gc_at.store(allocs_now + every.max(1), R);
            }
        } else {
            let mut last = ctx.last_gc_allocations.lock().unwrap();
            if *last == Some(allocs_now) {
                // No allocation progress since the previous collection:
                // the heap is genuinely full.
                result = Err(ExecError::Trap(VmTrap::OutOfMemory));
            } else {
                *last = Some(allocs_now);
            }
        }
        if result.is_ok() && ctx.options.oracle && vm.shadow.is_some() {
            if let Err(msg) = par_oracle_check(ctx) {
                result = Err(ExecError::Oracle(msg));
            }
        }
        if result.is_ok() {
            let stats = collect_parallel(ctx, handshake_time, t0);
            ctx.gc_log.lock().unwrap().push(stats);
        }
    }

    // Release: clear the request *before* bumping the generation, both
    // under the lock — a woken thread sitting at a gc-point pc must not
    // observe a stale request and re-park.
    let mut st = ctx.coord.state.lock().unwrap();
    if result.is_err() {
        st.halt = true;
        ctx.coord.halt.store(true, Ordering::Release);
    }
    ctx.vm.gc_request.store(false, Ordering::Release);
    st.parked = 0;
    st.generation += 1;
    ctx.coord.cv.notify_all();
    drop(st);

    if let Some(mu) = mu {
        if let Some(snap) = ctx.slots[mu.tid].lock().unwrap().take() {
            snap.restore(mu);
        }
    }
    result.map(|()| !halted)
}

/// A failed allocation: win the request CAS and lead, or join the
/// handshake another thread is already running.
pub(crate) fn request_gc(ctx: &RunCtx<'_>, mu: &mut Mutator) -> Result<bool, ExecError> {
    if ctx.vm.gc_request.compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire).is_ok()
    {
        lead_collection(ctx, mu)
    } else {
        Ok(park(ctx, mu))
    }
}

/// Parks a scheduler thread that has no mutator state to deposit (a
/// serve-mode OS thread between green requests). Joins the handshake —
/// the leader must not wait on it — but contributes no snapshot.
/// Returns `true` to resume, `false` on halt.
pub(crate) fn park_idle(ctx: &RunCtx<'_>) -> bool {
    let mut st = ctx.coord.state.lock().unwrap();
    if st.halt {
        return false;
    }
    if !ctx.vm.gc_request.load(R) {
        return true;
    }
    st.parked += 1;
    ctx.coord.cv.notify_all();
    let gen = st.generation;
    while st.generation == gen {
        st = ctx.coord.cv.wait(st).unwrap();
    }
    !st.halt
}

/// How often a mutator checks the halt flag (in instructions).
pub(crate) const HALT_CHECK_MASK: u64 = 0xff;

fn mutator_loop(ctx: &RunCtx<'_>, mu: Mutator) -> (Mutator, Result<(), ExecError>) {
    match ctx.jit.as_deref() {
        Some(engine) => mutator_loop_jit(ctx, engine, mu),
        None => mutator_loop_interp(ctx, mu),
    }
}

/// Instructions per JIT burst between halt/advance bookkeeping checks.
/// Coarser than the interpreter's per-step accounting but still far
/// finer than `max_advance`, so stuck-thread detection keeps working.
const JIT_BURST: u64 = 4096;

fn mutator_loop_jit(
    ctx: &RunCtx<'_>,
    engine: &JitEngine,
    mut mu: Mutator,
) -> (Mutator, Result<(), ExecError>) {
    let mut fuel = ctx.options.fuel;
    let mut advance: u64 = 0;
    loop {
        if ctx.coord.halt.load(Ordering::Acquire) {
            return (mu, Ok(()));
        }
        let (step, executed) = engine.run_burst(ctx.vm, &mut mu, JIT_BURST.min(fuel).max(1));
        let exhausted = executed >= fuel;
        fuel -= executed.min(fuel);
        if ctx.vm.gc_request.load(R) {
            advance += executed;
            if advance > ctx.options.max_advance {
                let thread = mu.tid;
                return (mu, Err(ExecError::StuckThread { thread }));
            }
        } else {
            advance = 0;
        }
        match step {
            ParStep::Normal => {
                if exhausted {
                    return (mu, Err(ExecError::OutOfFuel));
                }
            }
            ParStep::AtSafepoint => {
                advance = 0;
                if !park(ctx, &mut mu) {
                    return (mu, Ok(()));
                }
            }
            ParStep::NeedGc => {
                advance = 0;
                match request_gc(ctx, &mut mu) {
                    Ok(true) => {} // retry the allocation
                    Ok(false) => return (mu, Ok(())),
                    Err(e) => return (mu, Err(e)),
                }
            }
            ParStep::Finished => return (mu, Ok(())),
            ParStep::Trap(t) => return (mu, Err(ExecError::Trap(t))),
        }
    }
}

fn mutator_loop_interp(ctx: &RunCtx<'_>, mut mu: Mutator) -> (Mutator, Result<(), ExecError>) {
    let mut fuel = ctx.options.fuel;
    // Instructions executed since first observing the current request
    // without reaching a gc-point (§5.3: bounded by construction).
    let mut advance: u64 = 0;
    loop {
        match ctx.vm.step(&mut mu) {
            ParStep::Normal => {
                if fuel == 0 {
                    return (mu, Err(ExecError::OutOfFuel));
                }
                fuel -= 1;
                if mu.steps & HALT_CHECK_MASK == 0 && ctx.coord.halt.load(Ordering::Acquire) {
                    return (mu, Ok(()));
                }
                if ctx.vm.gc_request.load(R) {
                    advance += 1;
                    if advance > ctx.options.max_advance {
                        let thread = mu.tid;
                        return (mu, Err(ExecError::StuckThread { thread }));
                    }
                } else {
                    advance = 0;
                }
            }
            ParStep::AtSafepoint => {
                advance = 0;
                if !park(ctx, &mut mu) {
                    return (mu, Ok(()));
                }
            }
            ParStep::NeedGc => {
                advance = 0;
                match request_gc(ctx, &mut mu) {
                    Ok(true) => {} // retry the allocation
                    Ok(false) => return (mu, Ok(())),
                    Err(e) => return (mu, Err(e)),
                }
            }
            ParStep::Finished => return (mu, Ok(())),
            ParStep::Trap(t) => return (mu, Err(ExecError::Trap(t))),
        }
    }
}

/// Thread wrapper: runs the loop, records the first error, always
/// deregisters from the handshake so no leader waits on a dead thread.
fn mutator_thread(ctx: &RunCtx<'_>, mu: Mutator) -> Mutator {
    let (mut mu, res) = mutator_loop(ctx, mu);
    // Retire before deregistering: the run's final counters (and any
    // collection led after this thread leaves) must include this
    // thread's buffered allocations.
    ctx.vm.retire_tlab(&mut mu);
    let mut st = ctx.coord.state.lock().unwrap();
    if let Err(e) = res {
        let mut err = ctx.coord.error.lock().unwrap();
        if err.is_none() {
            *err = Some(e);
        }
        st.halt = true;
        ctx.coord.halt.store(true, Ordering::Release);
    }
    st.active -= 1;
    ctx.coord.cv.notify_all();
    drop(st);
    mu
}

/// The parallel executor: a shared machine plus run configuration.
///
/// Unlike [`crate::scheduler::Executor`], which time-slices simulated
/// threads on one OS thread, this spawns one OS thread per mutator and
/// `gc_workers` workers per collection.
pub struct ParExecutor {
    /// The shared machine.
    pub vm: ParMachine,
    /// Configuration.
    pub options: RuntimeOptions,
    /// Native baseline engine, built lazily on the first `--jit` run.
    jit: Option<Arc<JitEngine>>,
}

impl ParExecutor {
    /// Wraps a machine.
    #[must_use]
    pub fn new(vm: ParMachine, options: impl Into<RuntimeOptions>) -> ParExecutor {
        ParExecutor { vm, options: options.into(), jit: None }
    }

    /// A snapshot of the JIT engine's statistics, if `--jit` was set
    /// and [`ParExecutor::run_main`] has run.
    #[must_use]
    pub fn jit_summary(&self) -> Option<JitSummary> {
        self.jit.as_deref().map(JitEngine::summary)
    }

    /// Runs the module's entry procedure on every mutator stack region
    /// concurrently and drives collections until all threads finish.
    ///
    /// # Errors
    ///
    /// The first trap, fuel/advance exhaustion or oracle violation of
    /// any thread (other threads are halted at their next check).
    ///
    /// # Panics
    ///
    /// Panics on malformed gc maps or poisoned internal locks (either
    /// is a bug, not a program error).
    pub fn run_main(&mut self) -> Result<ParOutcome, ExecError> {
        if let Some(n) = self.options.force_every_allocs {
            self.vm.force_gc_at.store(n.max(1), R);
        }
        if self.options.jit && self.jit.is_none() {
            let engine = Arc::new(JitEngine::for_par(&self.vm));
            self.vm.set_code_map(engine.code_map());
            self.jit = Some(engine);
        }
        let vm = &self.vm;
        let n = vm.mutators();
        let mut ctx = RunCtx::new(vm, self.options, n, n);
        ctx.jit = self.jit.clone();

        let main = vm.module.main;
        let mut done: Vec<Mutator> = Vec::with_capacity(n);
        std::thread::scope(|s| {
            let ctx = &ctx;
            // The cms coordinator owns the concurrent marking workers;
            // it sleeps until a snapshot pause opens a cycle.
            if ctx.cms.is_some() {
                s.spawn(move || crate::cms::cms_coordinator(ctx));
            }
            let handles: Vec<_> = (0..n)
                .map(|tid| {
                    s.spawn(move || {
                        let mu = ctx.vm.spawn_mutator(tid, main, &[]);
                        mutator_thread(ctx, mu)
                    })
                })
                .collect();
            for h in handles {
                done.push(h.join().expect("mutator thread panicked"));
            }
            if let Some(run) = &ctx.cms {
                run.stop();
            }
        });

        if let Some(e) = ctx.coord.error.lock().unwrap().take() {
            return Err(e);
        }
        if let Some(heap) = vm.cms.as_ref() {
            if self.options.oracle && heap.evacuating.load(Ordering::Acquire) {
                // A `hold_evac` run ends with forwarding still published
                // (the coordinator stood down instead of pausing); this
                // audit is the pause's replacement proof that no store
                // or publish was torn or lost.
                if let Err(msg) = crate::cms::cms_evac_audit(&ctx) {
                    return Err(ExecError::Oracle(msg));
                }
            }
        }
        done.sort_by_key(|mu| mu.tid);
        let outputs: Vec<String> = done.iter().map(|mu| mu.output.clone()).collect();
        Ok(ParOutcome {
            output: outputs.concat(),
            outputs,
            collections: vm.collections.load(R),
            allocations: vm.allocations.load(R),
            words_allocated: vm.words_allocated.load(R),
            tlab_refills: vm.tlab_refills.load(R),
            tlab_allocs: vm.tlab_allocs.load(R),
            tlab_waste_words: vm.tlab_waste_words.load(R),
            satb_enqueued: vm.cms.as_ref().map_or(0, |c| c.satb_enqueued.load(R)),
            satb_drained: vm.cms.as_ref().map_or(0, |c| c.satb_drained.load(R)),
            evac_objects: vm.cms.as_ref().map_or(0, |c| c.evac_objects.load(R)),
            evac_words: vm.cms.as_ref().map_or(0, |c| c.evac_words.load(R)),
            evac_healed_loads: vm.cms.as_ref().map_or(0, |c| c.evac_healed_loads.load(R)),
            evac_healed_stores: vm.cms.as_ref().map_or(0, |c| c.evac_healed_stores.load(R)),
            steps: done.iter().map(|mu| mu.steps).sum(),
            gc_each: ctx.gc_log.into_inner().unwrap(),
        })
    }
}
