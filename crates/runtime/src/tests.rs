//! End-to-end collector tests: Mini-M3 source → unoptimized IR → VM code
//! with gc maps → execution under small heaps that force many
//! collections. Every program's output is checked against the reference
//! IR interpreter (which never collects).

use m3gc_codegen::{compile_program, CodegenOptions};
use m3gc_vm::machine::{HeapStrategy, Machine, MachineLayout};

use crate::options::RuntimeOptions;
use crate::scheduler::{ExecOutcome, Executor, GcMode};

fn compile(src: &str) -> m3gc_vm::VmModule {
    let mut prog = m3gc_frontend::compile_to_ir(src).unwrap_or_else(|e| panic!("{e}"));
    m3gc_ir::verify::verify_program(&prog).unwrap_or_else(|e| panic!("{e}"));
    compile_program(&mut prog, &CodegenOptions::default())
}

fn reference_output(src: &str) -> String {
    let prog = m3gc_frontend::compile_to_ir(src).unwrap_or_else(|e| panic!("{e}"));
    m3gc_ir::interp::run_program(&prog).unwrap_or_else(|e| panic!("reference run: {e}")).output
}

/// Runs with a given semispace size; returns (output, collections).
fn run_with_heap(src: &str, semi_words: usize) -> (String, u64) {
    let module = compile(src);
    let machine = Machine::new(
        module,
        MachineLayout {
            semi_words,
            stack_words: 1 << 14,
            max_threads: 4,
            ..MachineLayout::default()
        },
    );
    let mut ex = Executor::new(machine, RuntimeOptions::new());
    let out = ex.run_main().unwrap_or_else(|e| panic!("{e}\noutput: {}", ex.machine.output));
    (out.output, out.collections)
}

/// Checks output equality against the reference interpreter under a small
/// heap (forcing collections) and asserts at least `min_gcs` collections.
fn check_gc(src: &str, semi_words: usize, min_gcs: u64) {
    let expected = reference_output(src);
    let (out, gcs) = run_with_heap(src, semi_words);
    assert_eq!(out, expected);
    assert!(gcs >= min_gcs, "expected at least {min_gcs} collections, got {gcs}");
}

#[test]
fn list_reversal_survives_collections() {
    // Builds a list, repeatedly copies it; garbage accumulates fast.
    check_gc(
        "MODULE M;
         TYPE List = REF RECORD head: INTEGER; tail: List END;
         PROCEDURE Build(n: INTEGER): List =
         VAR l: List; i: INTEGER;
         BEGIN
           l := NIL;
           FOR i := 1 TO n DO
             WITH p = NEW(List) DO END;
           END;
           l := NIL;
           FOR i := n TO 1 BY -1 DO
             WITH q = l DO END;
             l := Cons(i, l);
           END;
           RETURN l;
         END Build;
         PROCEDURE Cons(h: INTEGER; t: List): List =
         VAR c: List;
         BEGIN
           c := NEW(List); c.head := h; c.tail := t; RETURN c;
         END Cons;
         PROCEDURE Sum(l: List): INTEGER =
         VAR s: INTEGER;
         BEGIN
           s := 0;
           WHILE l # NIL DO s := s + l.head; l := l.tail; END;
           RETURN s;
         END Sum;
         VAR r, i: INTEGER;
         BEGIN
           r := 0;
           FOR i := 1 TO 20 DO
             r := r + Sum(Build(30));
           END;
           PutInt(r);
         END M.",
        600,
        3,
    );
}

#[test]
fn pointers_in_registers_are_updated() {
    // A pointer held across many allocating calls must survive moves.
    check_gc(
        "MODULE M;
         TYPE R = REF RECORD x: INTEGER END;
         PROCEDURE Churn(n: INTEGER) =
         VAR i: INTEGER; t: R;
         BEGIN
           FOR i := 1 TO n DO t := NEW(R); t.x := i; END;
         END Churn;
         VAR keep: R; i: INTEGER;
         BEGIN
           keep := NEW(R);
           keep.x := 7777;
           FOR i := 1 TO 50 DO
             Churn(40);
             ASSERT(keep.x = 7777);
           END;
           PutInt(keep.x);
         END M.",
        400,
        5,
    );
}

#[test]
fn interior_pointers_rederive_after_moves() {
    // WITH creates a derived (interior) pointer live across an
    // allocation; the two-phase update must keep it valid when the array
    // moves.
    check_gc(
        "MODULE M;
         TYPE A = REF ARRAY [5..12] OF INTEGER;
              R = REF RECORD x: INTEGER END;
         VAR a: A; i, j, s: INTEGER; junk: R;
         BEGIN
           a := NEW(A);
           FOR i := 5 TO 12 DO a[i] := i * 100; END;
           s := 0;
           FOR i := 5 TO 12 DO
             WITH h = a[i] DO
               FOR j := 1 TO 8 DO
                 junk := NEW(R);  (* triggers collections; h must follow a *)
                 junk.x := j;
               END;
               s := s + h;
             END;
           END;
           PutInt(s);
         END M.",
        48,
        2,
    );
}

#[test]
fn var_params_into_heap_survive_collection() {
    check_gc(
        "MODULE M;
         TYPE R = REF RECORD val: INTEGER END;
              J = REF RECORD x: INTEGER END;
         PROCEDURE BumpLots(VAR v: INTEGER) =
         VAR j: J; i: INTEGER;
         BEGIN
           FOR i := 1 TO 10 DO
             j := NEW(J);    (* forces moves while v points into the heap *)
             j.x := i;
             v := v + 1;
           END;
         END BumpLots;
         VAR r: R; i: INTEGER;
         BEGIN
           r := NEW(R);
           r.val := 0;
           FOR i := 1 TO 30 DO BumpLots(r.val); END;
           PutInt(r.val);
         END M.",
        64,
        3,
    );
}

#[test]
fn deep_recursion_traces_many_frames() {
    check_gc(
        "MODULE M;
         TYPE L = REF RECORD v: INTEGER; next: L END;
         PROCEDURE Deep(n: INTEGER; acc: L): INTEGER =
         VAR c, junk: L;
         BEGIN
           IF n = 0 THEN RETURN Len(acc); END;
           junk := NEW(L);
           junk.v := n;
           c := NEW(L);
           c.v := n;
           c.next := acc;
           RETURN Deep(n - 1, c);
         END Deep;
         PROCEDURE Len(l: L): INTEGER =
         VAR n: INTEGER;
         BEGIN
           n := 0;
           WHILE l # NIL DO n := n + 1; l := l.next; END;
           RETURN n;
         END Len;
         BEGIN
           PutInt(Deep(120, NIL));
         END M.",
        450,
        1,
    );
}

#[test]
fn open_arrays_of_pointers_are_traced() {
    check_gc(
        "MODULE M;
         TYPE R = REF RECORD x: INTEGER END;
              V = REF ARRAY OF R;
         VAR v: V; i, s: INTEGER; junk: R;
         BEGIN
           v := NEW(V, 20);
           FOR i := 0 TO 19 DO
             v[i] := NEW(R);
             v[i].x := i;
           END;
           FOR i := 1 TO 100 DO junk := NEW(R); junk.x := i; END;
           s := 0;
           FOR i := 0 TO 19 DO s := s + v[i].x; END;
           PutInt(s);
         END M.",
        128,
        2,
    );
}

#[test]
fn gc_torture_collects_at_every_gc_point() {
    // Force a collection event at every single allocation: the most
    // aggressive exercise of table decoding and derived-value updates.
    let src = "MODULE M;
         TYPE List = REF RECORD head: INTEGER; tail: List END;
         PROCEDURE Cons(h: INTEGER; t: List): List =
         VAR c: List;
         BEGIN c := NEW(List); c.head := h; c.tail := t; RETURN c; END Cons;
         VAR l: List; i, s: INTEGER;
         BEGIN
           l := NIL;
           FOR i := 1 TO 25 DO l := Cons(i, l); END;
           s := 0;
           WHILE l # NIL DO s := s + l.head; l := l.tail; END;
           PutInt(s);
         END M.";
    let expected = reference_output(src);
    let module = compile(src);
    let machine = Machine::new(
        module,
        MachineLayout {
            semi_words: 4096,
            stack_words: 4096,
            max_threads: 2,
            ..MachineLayout::default()
        },
    );
    let mut ex = Executor::new(machine, RuntimeOptions::new().torture(true));
    let out = ex.run_main().unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(out.output, expected);
    assert!(out.collections >= 20, "got {}", out.collections);
}

#[test]
fn trace_only_mode_preserves_semantics() {
    let src = "MODULE M;
         TYPE R = REF RECORD x: INTEGER END;
         VAR r: R; i, s: INTEGER;
         BEGIN
           s := 0;
           FOR i := 1 TO 50 DO r := NEW(R); r.x := i; s := s + r.x; END;
           PutInt(s);
         END M.";
    let expected = reference_output(src);
    let module = compile(src);
    let machine = Machine::new(
        module,
        MachineLayout {
            semi_words: 1 << 16,
            stack_words: 4096,
            max_threads: 2,
            ..MachineLayout::default()
        },
    );
    let mut ex = Executor::new(
        machine,
        RuntimeOptions::new().gc_mode(GcMode::TraceOnly).force_every_allocs(Some(5)),
    );
    let out = ex.run_main().unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(out.output, expected);
    assert!(out.gc_total.frames_traced > 0);
}

#[test]
fn out_of_memory_is_detected() {
    let src = "MODULE M;
         TYPE List = REF RECORD head: INTEGER; tail: List END;
         VAR l: List; i: INTEGER;
         BEGIN
           l := NIL;
           FOR i := 1 TO 10000 DO
             WITH c = NEW(List) DO END;
             l := Grow(l, i);
           END;
         END M.
         "
    .replace(
        "l := Grow(l, i);",
        "WITH c2 = NEW(List) DO c2.head := i; c2.tail := l; l := c2; END;",
    );
    let module = compile(&src);
    let machine = Machine::new(
        module,
        MachineLayout {
            semi_words: 512,
            stack_words: 4096,
            max_threads: 2,
            ..MachineLayout::default()
        },
    );
    let mut ex = Executor::new(machine, RuntimeOptions::new());
    let r = ex.run_main();
    assert_eq!(
        r.err().map(|e| matches!(
            e,
            crate::scheduler::ExecError::Trap(m3gc_vm::machine::VmTrap::OutOfMemory)
        )),
        Some(true)
    );
}

#[test]
fn two_threads_advance_to_gc_points() {
    // Spawn two threads running the same allocating procedure; when one
    // triggers a collection the other must advance to a gc-point.
    let src = "MODULE M;
         TYPE R = REF RECORD x: INTEGER END;
         PROCEDURE Work(n: INTEGER): INTEGER =
         VAR i, s: INTEGER; r: R;
         BEGIN
           s := 0;
           FOR i := 1 TO n DO
             r := NEW(R);
             r.x := i;
             s := s + r.x;
           END;
           RETURN s;
         END Work;
         BEGIN
           PutInt(Work(100));
         END M.";
    let module = compile(src);
    let machine = Machine::new(
        module,
        MachineLayout {
            semi_words: 128,
            stack_words: 4096,
            max_threads: 4,
            ..MachineLayout::default()
        },
    );
    let mut ex = Executor::new(machine, RuntimeOptions::new());
    // Thread 0: main. Threads 1, 2: Work(50) directly.
    ex.machine.spawn(ex.machine.module.main, &[]);
    let work =
        ex.machine.module.procs.iter().position(|p| p.name == "Work").expect("Work proc") as u16;
    ex.machine.spawn(work, &[50]);
    ex.machine.spawn(work, &[50]);
    let out = ex.run().unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(out.output, "5050");
    assert!(out.collections >= 1);
    assert!(ex
        .machine
        .threads
        .iter()
        .all(|t| t.status == m3gc_vm::machine::ThreadStatus::Finished));
}

#[test]
fn decode_cache_amortizes_repeated_collections() {
    // Collect at every allocation inside a loop: after the first (cold)
    // collection the same gc-points are consulted over and over, so warm
    // collections must serve mostly from the memo and perform far fewer
    // decode operations (the paper's §6.3 decoding overhead, paid once).
    let src = "MODULE M;
         TYPE R = REF RECORD x: INTEGER END;
         VAR r: R; i, s: INTEGER;
         BEGIN
           s := 0;
           FOR i := 1 TO 60 DO r := NEW(R); r.x := i; s := s + r.x; END;
           PutInt(s);
         END M.";
    let module = compile(src);
    let machine = Machine::new(
        module,
        MachineLayout {
            semi_words: 1 << 14,
            stack_words: 4096,
            max_threads: 2,
            ..MachineLayout::default()
        },
    );
    let mut ex = Executor::new(machine, RuntimeOptions::new().torture(true));
    let out = ex.run_main().unwrap_or_else(|e| panic!("{e}"));
    assert!(out.collections >= 20, "got {}", out.collections);
    let cold = &out.gc_each[0];
    assert!(cold.decode_ops > 0, "first collection must decode");
    assert_eq!(cold.decode_hits, 0, "nothing memoized before the first collection");
    let warm = &out.gc_each[1..];
    let warm_ops: u64 = warm.iter().map(|s| s.decode_ops).sum();
    let warm_hits: u64 = warm.iter().map(|s| s.decode_hits).sum();
    let warm_mean_ops = warm_ops as f64 / warm.len() as f64;
    assert!(
        warm_mean_ops * 2.0 <= cold.decode_ops as f64,
        "warm collections should decode at least 2x less: cold={} warm mean={warm_mean_ops}",
        cold.decode_ops
    );
    assert!(warm_hits > 0, "warm collections must hit the memo");
    // Lifetime bound: never more decode ops than the module has gc-points.
    let total_points = ex.decode_cache().index().gc_point_pcs().count() as u64;
    let total_ops: u64 = out.gc_each.iter().map(|s| s.decode_ops).sum();
    assert!(
        total_ops <= total_points,
        "each gc-point decodes at most once per module: {total_ops} > {total_points}"
    );
    assert_eq!(ex.decode_cache().memoized_points() as u64, total_ops);
}

#[test]
fn collection_stats_are_plausible() {
    let src = "MODULE M;
         TYPE List = REF RECORD head: INTEGER; tail: List END;
         VAR l: List; i: INTEGER;
         BEGIN
           l := NIL;
           FOR i := 1 TO 200 DO
             WITH c = NEW(List) DO c.head := i; c.tail := l; l := c; END;
             IF i MOD 10 = 0 THEN l := NIL; END;
           END;
           PutInt(0);
         END M.";
    let module = compile(src);
    let machine = Machine::new(
        module,
        MachineLayout {
            semi_words: 256,
            stack_words: 4096,
            max_threads: 2,
            ..MachineLayout::default()
        },
    );
    let mut ex = Executor::new(machine, RuntimeOptions::new());
    let out = ex.run_main().unwrap_or_else(|e| panic!("{e}"));
    assert!(out.collections > 0);
    // Dropping the list every 10 elements keeps survivors tiny.
    let per = out.gc_total.objects_copied / out.collections.max(1);
    assert!(per < 30, "too many survivors per collection: {per}");
    assert!(out.gc_total.frames_traced >= out.collections);
}

// --- Generational collection ---

/// Runs under a generational heap; returns the outcome.
fn run_gen(src: &str, semi_words: usize, nursery_words: usize) -> ExecOutcome {
    let module = compile(src);
    let machine = Machine::new(
        module,
        MachineLayout {
            semi_words,
            stack_words: 1 << 14,
            max_threads: 4,
            heap: HeapStrategy::Generational { nursery_words, promote_age: 2 },
        },
    );
    let mut ex = Executor::new(machine, RuntimeOptions::new());
    ex.run_main().unwrap_or_else(|e| panic!("{e}\noutput: {}", ex.machine.output))
}

/// Checks output equality against the reference interpreter under a
/// generational heap and asserts at least `min_minor` minor collections.
fn check_gen(src: &str, semi_words: usize, nursery_words: usize, min_minor: u64) -> ExecOutcome {
    let expected = reference_output(src);
    let out = run_gen(src, semi_words, nursery_words);
    assert_eq!(out.output, expected);
    assert!(
        out.minor_collections >= min_minor,
        "expected at least {min_minor} minor collections, got {} ({} major)",
        out.minor_collections,
        out.major_collections
    );
    out
}

#[test]
fn minor_collections_reclaim_short_lived_garbage() {
    // Heavy churn with a tiny live set: minors alone must carry the run
    // (the tenured set stays small, so no major is ever forced).
    let out = check_gen(
        "MODULE M;
         TYPE R = REF RECORD x: INTEGER END;
         VAR keep: R; i: INTEGER;
         BEGIN
           keep := NEW(R);
           keep.x := 7777;
           FOR i := 1 TO 2000 DO
             WITH t = NEW(R) DO t.x := i; END;
           END;
           PutInt(keep.x);
         END M.",
        4096,
        64,
        5,
    );
    assert_eq!(out.major_collections, 0, "churn must not force major collections");
    // Dead-on-arrival objects are never copied: survivors per minor stay
    // far below the nursery's object capacity.
    let per = out.gc_total.objects_copied / out.minor_collections.max(1);
    assert!(per < 20, "too many survivors per minor collection: {per}");
}

#[test]
fn survivors_are_promoted_by_age() {
    // `keep` survives every minor collection, so once its age reaches the
    // promotion threshold it must move to tenured space and stop being
    // copied at every minor.
    let out = check_gen(
        "MODULE M;
         TYPE List = REF RECORD head: INTEGER; tail: List END;
         VAR l: List; i, s: INTEGER;
         BEGIN
           l := NIL;
           FOR i := 1 TO 40 DO
             WITH c = NEW(List) DO c.head := i; c.tail := l; l := c; END;
             WITH junk = NEW(List) DO junk.head := 0; END;
           END;
           s := 0;
           WHILE l # NIL DO s := s + l.head; l := l.tail; END;
           PutInt(s);
         END M.",
        4096,
        64,
        2,
    );
    assert!(out.gc_total.promoted_objects > 0, "long-lived list must be promoted");
    assert!(
        out.gc_total.promoted_objects <= out.gc_total.objects_copied,
        "promotions are a subset of copies"
    );
}

#[test]
fn write_barrier_feeds_the_remembered_set() {
    // A long-lived record is promoted, then repeatedly has freshly
    // allocated nodes stored into its pointer field: each such store is an
    // old→young edge that only the write barrier can make the minor
    // collections see.
    let out = check_gen(
        "MODULE M;
         TYPE Node = REF RECORD x: INTEGER; next: Node END;
         VAR keep: Node; i: INTEGER;
         BEGIN
           keep := NEW(Node);
           keep.x := 1000;
           FOR i := 1 TO 400 DO
             WITH t = NEW(Node) DO
               t.x := i;
               keep.next := t;
             END;
           END;
           PutInt(keep.x + keep.next.x);
         END M.",
        4096,
        64,
        3,
    );
    assert!(out.barrier.executed > 0, "barriers must execute");
    // The store always targets the same slot, which the collector itself
    // re-remembers after each minor (the edge stays old→young), so the
    // barrier's own pushes mostly dedup against that card entry — either
    // way the barrier must be seeing the edge.
    assert!(
        out.barrier.recorded + out.barrier.deduped > 0,
        "old→young stores must be recorded or deduped: {:?}",
        out.barrier
    );
    assert!(
        out.gc_total.remembered_processed > 0,
        "minor collections must drain the remembered set"
    );
}

#[test]
fn fruitless_minor_escalates_to_major_collection() {
    // The live list grows until it no longer fits the nursery's worth of
    // reclaim; promotion fills tenured space with data that later dies
    // (the list is dropped and rebuilt), so majors must both happen and
    // succeed.
    let out = check_gen(
        "MODULE M;
         TYPE List = REF RECORD head: INTEGER; tail: List END;
         PROCEDURE Build(n: INTEGER): List =
         VAR l: List; i: INTEGER;
         BEGIN
           l := NIL;
           FOR i := 1 TO n DO
             WITH c = NEW(List) DO c.head := i; c.tail := l; l := c; END;
           END;
           RETURN l;
         END Build;
         PROCEDURE Sum(l: List): INTEGER =
         VAR s: INTEGER;
         BEGIN
           s := 0;
           WHILE l # NIL DO s := s + l.head; l := l.tail; END;
           RETURN s;
         END Sum;
         VAR r, i: INTEGER;
         BEGIN
           r := 0;
           FOR i := 1 TO 30 DO
             r := r + Sum(Build(120));
           END;
           PutInt(r);
         END M.",
        1024,
        64,
        2,
    );
    assert!(out.major_collections >= 1, "tenured garbage must force majors");
}

#[test]
fn generational_out_of_memory_is_detected() {
    // Unbounded live growth: minors promote, majors cannot reclaim, and
    // the run must end in OutOfMemory rather than loop forever.
    let src = "MODULE M;
         TYPE List = REF RECORD head: INTEGER; tail: List END;
         VAR l: List; i: INTEGER;
         BEGIN
           l := NIL;
           FOR i := 1 TO 10000 DO
             WITH c = NEW(List) DO c.head := i; c.tail := l; l := c; END;
           END;
         END M.";
    let module = compile(src);
    let machine = Machine::new(
        module,
        MachineLayout {
            semi_words: 512,
            stack_words: 4096,
            max_threads: 2,
            heap: HeapStrategy::Generational { nursery_words: 64, promote_age: 2 },
        },
    );
    let mut ex = Executor::new(machine, RuntimeOptions::new());
    let r = ex.run_main();
    assert_eq!(
        r.err().map(|e| matches!(
            e,
            crate::scheduler::ExecError::Trap(m3gc_vm::machine::VmTrap::OutOfMemory)
        )),
        Some(true)
    );
}

#[test]
fn oversized_allocations_bypass_the_nursery() {
    // An array bigger than the nursery goes straight to tenured space;
    // its pointer slots are eagerly remembered so young objects stored
    // into it before the next gc-point survive minor collections.
    let out = check_gen(
        "MODULE M;
         TYPE R = REF RECORD x: INTEGER END;
              V = REF ARRAY OF R;
         VAR v: V; i, s: INTEGER;
         BEGIN
           v := NEW(V, 100);
           FOR i := 0 TO 99 DO
             v[i] := NEW(R);
             v[i].x := i;
             WITH junk = NEW(R) DO junk.x := 0; END;
           END;
           s := 0;
           FOR i := 0 TO 99 DO s := s + v[i].x; END;
           PutInt(s);
         END M.",
        4096,
        64,
        2,
    );
    assert!(out.gc_total.remembered_processed > 0);
}

#[test]
fn derived_values_follow_minor_collections() {
    // The dedicated §3 ordering test under generational collection: `h`
    // is an interior (derived) pointer into the array, held live across
    // allocations that trigger *minor* collections. The un-derive /
    // re-derive round trip must recover it from the relocated base both
    // when the array is copied within the nursery and when it is
    // promoted to tenured space mid-loop.
    let out = check_gen(
        "MODULE M;
         TYPE A = REF ARRAY [5..12] OF INTEGER;
              R = REF RECORD x: INTEGER END;
         VAR a: A; i, j, s: INTEGER;
         BEGIN
           a := NEW(A);
           FOR i := 5 TO 12 DO a[i] := i * 100; END;
           s := 0;
           FOR i := 5 TO 12 DO
             WITH h = a[i] DO
               FOR j := 1 TO 40 DO
                 WITH junk = NEW(R) DO junk.x := j; END;
               END;
               s := s + h;
             END;
           END;
           PutInt(s);
         END M.",
        2048,
        32,
        3,
    );
    assert!(out.gc_total.derived_updated > 0, "derived values must be traced");
    assert!(out.gc_total.promoted_objects > 0, "the array must survive long enough to promote");
}

#[test]
fn generational_gc_torture_matches_reference() {
    // Force a collection event at every allocation under the generational
    // heap: every freshness-elided barrier window closes immediately, so
    // this exercises the eager-remembering path and promotion aging hard.
    let src = "MODULE M;
         TYPE List = REF RECORD head: INTEGER; tail: List END;
         PROCEDURE Cons(h: INTEGER; t: List): List =
         VAR c: List;
         BEGIN c := NEW(List); c.head := h; c.tail := t; RETURN c; END Cons;
         VAR l: List; i, s: INTEGER;
         BEGIN
           l := NIL;
           FOR i := 1 TO 25 DO l := Cons(i, l); END;
           s := 0;
           WHILE l # NIL DO s := s + l.head; l := l.tail; END;
           PutInt(s);
         END M.";
    let expected = reference_output(src);
    let module = compile(src);
    let machine = Machine::new(
        module,
        MachineLayout {
            semi_words: 4096,
            stack_words: 4096,
            max_threads: 2,
            heap: HeapStrategy::Generational { nursery_words: 128, promote_age: 2 },
        },
    );
    let mut ex = Executor::new(machine, RuntimeOptions::new().torture(true));
    let out = ex.run_main().unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(out.output, expected);
    assert!(out.collections >= 20, "got {}", out.collections);
    assert!(out.gc_total.promoted_objects > 0);
}
