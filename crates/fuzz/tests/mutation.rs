//! Mutation testing of the precision oracle.
//!
//! The differential harness is only as good as its ability to notice a
//! lying table. These tests corrupt the compiler-emitted gc-maps on
//! purpose — dropping derivation records, flipping derivation signs,
//! dropping live register roots — re-encode them, and assert the run is
//! caught: either by the shadow oracle / stale-pointer check, or by the
//! output diverging from the reference interpreter. If a mutation ever
//! slips through silently, the oracle has a blind spot.

use m3gc_compiler::{compile, reference_output, Options};
use m3gc_core::derive::DerivationRecord;
use m3gc_core::encode::encode_module;
use m3gc_core::layout::RegSet;
use m3gc_core::tables::ModuleTables;
use m3gc_runtime::{Executor, RuntimeOptions};

/// §4 "Indirect References": `Bump(o.inner.v)` pushes an interior
/// pointer into the `Inner` record, derived from a register base, and
/// the callee allocates — so the derivation is live at a gc-point where
/// every torture run collects, and the collector must un-derive and
/// re-derive the pushed address through the moved record.
const SRC: &str = "MODULE M;
     TYPE Inner = REF RECORD v: INTEGER END;
          Outer = REF RECORD inner: Inner END;
          R = REF RECORD x: INTEGER END;
     PROCEDURE Bump(VAR v: INTEGER) =
     VAR junk: R;
     BEGIN
       junk := NEW(R);
       junk.x := 1;
       v := v + 1;
     END Bump;
     VAR o: Outer; i: INTEGER;
     BEGIN
       o := NEW(Outer);
       o.inner := NEW(Inner);
       o.inner.v := 0;
       FOR i := 1 TO 20 DO
         Bump(o.inner.v);
       END;
       PutInt(o.inner.v);
     END M.";

/// Compiles `SRC` at -O2, corrupts the logical tables with `mutate`
/// (which must report how many sites it hit), re-encodes them, and runs
/// under torture with shadow mode and the oracle armed.
fn run_mutated(mutate: impl Fn(&mut ModuleTables) -> usize) -> Result<String, String> {
    let opts = Options::o2();
    let mut module = compile(SRC, &opts).expect("compile");
    let hits = mutate(&mut module.logical_maps);
    assert!(hits > 0, "mutation found no site to corrupt — not a real test");
    module.gc_maps = encode_module(&module.logical_maps, opts.codegen.scheme);
    let ropts = RuntimeOptions::new()
        .semi_words(1 << 12)
        .stack_words(1 << 14)
        .max_threads(4)
        .torture(true)
        .oracle(true);
    let machine = ropts.build_machine(module);
    let mut ex = Executor::try_new(machine, ropts).map_err(|e| e.to_string())?;
    ex.run_main().map(|out| out.output).map_err(|e| e.to_string())
}

fn assert_caught(kind: &str, result: Result<String, String>) {
    let expected = reference_output(SRC).expect("reference");
    match result {
        Err(e) => {
            eprintln!("{kind}: caught with error: {e}");
        }
        Ok(out) => {
            assert_ne!(
                out, expected,
                "{kind}: corrupted tables produced the correct output — mutation not caught"
            );
            eprintln!("{kind}: caught as output divergence");
        }
    }
}

#[test]
fn untouched_tables_pass() {
    let out = run_mutated(|_| usize::MAX).expect("clean run");
    assert_eq!(out, reference_output(SRC).expect("reference"));
}

#[test]
fn dropped_derivation_records_are_caught() {
    assert_caught(
        "drop-derivations",
        run_mutated(|tables| {
            let mut hits = 0;
            for proc in &mut tables.procs {
                for point in &mut proc.points {
                    hits += point.derivations.len();
                    point.derivations.clear();
                }
            }
            hits
        }),
    );
}

#[test]
fn flipped_derivation_signs_are_caught() {
    assert_caught(
        "flip-signs",
        run_mutated(|tables| {
            let mut hits = 0;
            for proc in &mut tables.procs {
                for point in &mut proc.points {
                    for rec in &mut point.derivations {
                        match rec {
                            DerivationRecord::Simple { bases, .. } => {
                                for (_, sign) in bases {
                                    *sign = sign.flip();
                                    hits += 1;
                                }
                            }
                            DerivationRecord::Ambiguous { variants, .. } => {
                                for bases in variants {
                                    for (_, sign) in bases {
                                        *sign = sign.flip();
                                        hits += 1;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            hits
        }),
    );
}

#[test]
fn dropped_register_roots_are_caught() {
    assert_caught(
        "drop-reg-roots",
        run_mutated(|tables| {
            let mut hits = 0;
            for proc in &mut tables.procs {
                for point in &mut proc.points {
                    hits += point.regs.len();
                    point.regs = RegSet::EMPTY;
                }
            }
            hits
        }),
    );
}
