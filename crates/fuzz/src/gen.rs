//! Seeded random program generator.
//!
//! Produces well-typed Mini-M3 modules over a fixed declaration skeleton
//! (a linked record type, open and non-zero-lower-bound arrays, an
//! array-of-arrays for double indexing, helper procedures with value and
//! `VAR` parameters) with a randomized body exercising the idioms the
//! paper's tables must describe: records, arrays, conditionals, loops,
//! calls, `WITH` aliases into object interiors, and induction-variable
//! patterns that strength reduction, CSE and double indexing turn into
//! derived pointers.
//!
//! Programs are total by construction up to deterministic traps:
//!
//! * every `WHILE`/`REPEAT` counts a dedicated counter variable `w` down
//!   from a small constant and nothing else assigns it, so loops
//!   terminate;
//! * index variables stay in `[0, 8)` via `(v + c) MOD 8` updates and
//!   `FOR` ranges, and every array is allocated with length 8 (the fixed
//!   array spans `[2..9]`);
//! * `DIV`/`MOD` divisors are non-zero constants.
//!
//! NIL dereferences *can* occur (e.g. after walking `r := r.nxt` past the
//! allocated spine) — deliberately: traps are deterministic and must
//! agree between the reference interpreter and every VM configuration.

use m3gc_frontend::ast::*;
use m3gc_frontend::error::Pos;
use m3gc_testkit::Rng;

const IDX_LEN: i64 = 8;

fn ex(kind: ExprKind) -> Expr {
    Expr { id: 0, pos: Pos::default(), kind }
}

fn int(v: i64) -> Expr {
    ex(ExprKind::Int(v))
}

fn name(n: &str) -> Expr {
    ex(ExprKind::Name(n.to_string()))
}

fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
    ex(ExprKind::Bin(op, Box::new(l), Box::new(r)))
}

fn field(base: Expr, f: &str) -> Expr {
    ex(ExprKind::Field(Box::new(base), f.to_string()))
}

fn index(base: Expr, i: Expr) -> Expr {
    ex(ExprKind::Index(Box::new(base), Box::new(i)))
}

fn call(n: &str, args: Vec<Expr>) -> Expr {
    ex(ExprKind::Call { name: n.to_string(), args })
}

fn ty_named(n: &str) -> TypeExpr {
    TypeExpr { pos: Pos::default(), kind: TypeExprKind::Named(n.to_string()) }
}

fn ty_int() -> TypeExpr {
    TypeExpr { pos: Pos::default(), kind: TypeExprKind::Int }
}

fn new_of(tyname: &str, len: Option<i64>) -> Expr {
    ex(ExprKind::New { ty: ty_named(tyname), len: len.map(|l| Box::new(int(l))) })
}

fn stmt(kind: StmtKind) -> Stmt {
    Stmt { pos: Pos::default(), kind }
}

fn assign(lhs: Expr, rhs: Expr) -> Stmt {
    stmt(StmtKind::Assign { lhs, rhs })
}

/// `(v + c) MOD 8` — keeps an index variable in range.
fn idx_step(var: &str, c: i64) -> Stmt {
    assign(name(var), bin(BinOp::Mod, bin(BinOp::Add, name(var), int(c)), int(IDX_LEN)))
}

/// `(e MOD 8)` over an arbitrary non-negative index expression.
fn idx_expr(e: Expr) -> Expr {
    bin(BinOp::Mod, e, int(IDX_LEN))
}

/// An in-range index for the `[2..9]` fixed array.
fn fixed_idx(e: Expr) -> Expr {
    bin(BinOp::Add, idx_expr(e), int(2))
}

struct Gen {
    rng: Rng,
}

impl Gen {
    /// Integer variables readable/writable in the main body.
    const INT_VARS: &'static [&'static str] = &["i", "j", "s", "t", "k"];

    fn int_expr(&mut self, depth: u32, heap: bool) -> Expr {
        if depth == 0 || self.rng.chance(2, 5) {
            return match self.rng.below(if heap { 10 } else { 4 }) {
                0 => int(self.rng.range_i64(0, 10)),
                1 | 2 => name(self.rng.pick_copy(Self::INT_VARS)),
                3 => name(self.rng.pick_copy(&["s", "t"])),
                4 => field(name("r"), "a"),
                5 => index(name("a"), name(self.rng.pick_copy(&["i", "j", "k"]))),
                6 => index(name("b"), fixed_idx(name("j"))),
                7 => index(index(name("m"), name("i")), name("j")),
                8 => index(field(name("r"), "arr"), name(self.rng.pick_copy(&["i", "k"]))),
                _ => field(field(name("r"), "nxt"), "a"),
            };
        }
        match self.rng.below(7) {
            0 => bin(BinOp::Add, self.int_expr(depth - 1, heap), self.int_expr(depth - 1, heap)),
            1 => bin(BinOp::Sub, self.int_expr(depth - 1, heap), self.int_expr(depth - 1, heap)),
            2 => bin(BinOp::Mul, self.int_expr(depth - 1, heap), int(self.rng.range_i64(0, 5))),
            3 => bin(BinOp::Div, self.int_expr(depth - 1, heap), int(self.rng.range_i64(2, 8))),
            4 => bin(BinOp::Mod, self.int_expr(depth - 1, heap), int(self.rng.range_i64(2, 8))),
            5 if heap => call(
                "Sum",
                vec![match self.rng.below(3) {
                    0 => name("a"),
                    1 => field(name("r"), "arr"),
                    _ => index(name("m"), name("j")),
                }],
            ),
            6 if heap => {
                call("F", vec![self.int_expr(depth - 1, false), self.int_expr(depth - 1, false)])
            }
            _ => ex(ExprKind::Un(UnOp::Neg, Box::new(self.int_expr(depth - 1, heap)))),
        }
    }

    fn bool_expr(&mut self, depth: u32, heap: bool) -> Expr {
        if depth == 0 || self.rng.chance(1, 2) {
            let op = self.rng.pick_copy(&[
                BinOp::Eq,
                BinOp::Ne,
                BinOp::Lt,
                BinOp::Le,
                BinOp::Gt,
                BinOp::Ge,
            ]);
            return bin(op, self.int_expr(1, heap), self.int_expr(1, heap));
        }
        match self.rng.below(4) {
            0 if heap => bin(BinOp::Ne, field(name("r"), "nxt"), ex(ExprKind::Nil)),
            1 => bin(BinOp::And, self.bool_expr(depth - 1, heap), self.bool_expr(depth - 1, heap)),
            2 => bin(BinOp::Or, self.bool_expr(depth - 1, heap), self.bool_expr(depth - 1, heap)),
            _ => ex(ExprKind::Un(UnOp::Not, Box::new(self.bool_expr(depth - 1, heap)))),
        }
    }

    /// One random main-body statement (possibly a compound one).
    fn main_stmt(&mut self, depth: u32, out: &mut Vec<Stmt>) {
        match self.rng.below(if depth == 0 { 12 } else { 17 }) {
            0 => out.push(assign(name(self.rng.pick_copy(&["s", "t"])), self.int_expr(2, true))),
            1 => out.push(idx_step(self.rng.pick_copy(&["i", "j"]), self.rng.range_i64(1, 6))),
            2 => out.push(match self.rng.below(6) {
                0 => assign(name("r"), new_of("R", None)),
                1 => assign(field(name("r"), "nxt"), new_of("R", None)),
                2 => assign(field(name("r"), "arr"), new_of("A", Some(IDX_LEN))),
                3 => assign(name("a"), new_of("A", Some(IDX_LEN))),
                4 => assign(name("b"), new_of("B", None)),
                _ => assign(index(name("m"), name("i")), new_of("A", Some(IDX_LEN))),
            }),
            3 => out.push(match self.rng.below(5) {
                0 => assign(field(name("r"), "a"), self.int_expr(2, true)),
                1 => assign(index(name("a"), name("i")), self.int_expr(2, true)),
                2 => assign(index(name("b"), fixed_idx(name("i"))), self.int_expr(1, true)),
                3 => assign(index(index(name("m"), name("i")), name("j")), self.int_expr(1, true)),
                _ => assign(index(field(name("r"), "arr"), name("j")), self.int_expr(1, true)),
            }),
            4 => out.push(match self.rng.below(3) {
                0 => assign(field(name("r"), "nxt"), name("r")),
                1 => assign(name("r"), field(name("r"), "nxt")),
                _ => assign(field(field(name("r"), "nxt"), "a"), self.int_expr(1, true)),
            }),
            5 => out.push(stmt(StmtKind::Call(call(
                "Bump",
                vec![match self.rng.below(4) {
                    0 => name(self.rng.pick_copy(&["s", "t"])),
                    1 => field(name("r"), "a"),
                    2 => index(name("a"), name("j")),
                    _ => index(index(name("m"), name("j")), name("i")),
                }],
            )))),
            6 => out.push(assign(
                name("s"),
                call("F", vec![self.int_expr(1, true), self.int_expr(1, true)]),
            )),
            7 => out.push(stmt(StmtKind::Call(call("PutInt", vec![self.int_expr(2, true)])))),
            8..=11 => out.push(assign(name(self.rng.pick_copy(&["s", "t", "i", "j"])), {
                let e = self.int_expr(2, true);
                match self.rng.below(2) {
                    0 => idx_expr(e), // writes to i/j must stay in range
                    _ => idx_expr(bin(BinOp::Add, e, int(1))),
                }
            })),
            12 => {
                // IF / ELSIF / ELSE
                let mut arms = vec![(self.bool_expr(2, true), self.block(depth - 1, 1, 3))];
                if self.rng.chance(1, 3) {
                    arms.push((self.bool_expr(1, true), self.block(depth - 1, 1, 2)));
                }
                let else_body =
                    if self.rng.coin() { self.block(depth - 1, 1, 3) } else { Vec::new() };
                out.push(stmt(StmtKind::If { arms, else_body }));
            }
            13 => {
                // Terminating WHILE over the dedicated counter.
                out.push(assign(name("w"), int(self.rng.range_i64(1, 6))));
                let mut body = self.block(depth - 1, 1, 3);
                body.push(assign(name("w"), bin(BinOp::Sub, name("w"), int(1))));
                out.push(stmt(StmtKind::While { cond: bin(BinOp::Gt, name("w"), int(0)), body }));
            }
            14 => {
                // Terminating REPEAT over the dedicated counter.
                out.push(assign(name("w"), int(self.rng.range_i64(1, 5))));
                let mut body = self.block(depth - 1, 1, 2);
                body.push(assign(name("w"), bin(BinOp::Sub, name("w"), int(1))));
                out.push(stmt(StmtKind::Repeat { body, cond: bin(BinOp::Le, name("w"), int(0)) }));
            }
            15 => {
                // FOR over the dedicated induction variable (in-range index).
                out.push(stmt(StmtKind::For {
                    var: "k".to_string(),
                    from: int(0),
                    to: int(IDX_LEN - 1),
                    by: if self.rng.coin() { None } else { Some(int(2)) },
                    body: self.block(depth - 1, 1, 3),
                }));
            }
            _ => {
                // WITH aliases: an array slot, a record field, or a ref.
                let (n, e, body) = match self.rng.below(3) {
                    0 => {
                        let mut b = vec![assign(
                            name("h"),
                            bin(BinOp::Add, name("h"), self.int_expr(1, true)),
                        )];
                        if self.rng.coin() {
                            b.push(assign(name("s"), name("h")));
                        }
                        ("h", index(name("a"), name("i")), b)
                    }
                    1 => {
                        let b = vec![assign(name("h"), self.int_expr(2, true))];
                        ("h", field(name("r"), "a"), b)
                    }
                    _ => {
                        let b = vec![
                            assign(index(name("h"), name("j")), self.int_expr(1, true)),
                            assign(name("t"), index(name("h"), name("i"))),
                        ];
                        ("h", index(name("m"), name("i")), b)
                    }
                };
                out.push(stmt(StmtKind::With { bindings: vec![(n.to_string(), e)], body }));
            }
        }
    }

    fn block(&mut self, depth: u32, min: u64, max: u64) -> Vec<Stmt> {
        let n = self.rng.range_i64(min as i64, max as i64 + 1);
        let mut out = Vec::new();
        for _ in 0..n {
            self.main_stmt(depth, &mut out);
        }
        out
    }

    /// A random pure-integer procedure `F(x, y): INTEGER`.
    fn proc_f(&mut self) -> ProcDecl {
        let mut body =
            vec![assign(name("u"), bin(BinOp::Add, name("x"), bin(BinOp::Mul, name("y"), int(2))))];
        for _ in 0..self.rng.below(4) {
            match self.rng.below(3) {
                0 => body.push(assign(name("u"), self.int_expr_local(2))),
                1 => body.push(stmt(StmtKind::If {
                    arms: vec![(
                        bin(
                            self.rng.pick_copy(&[BinOp::Lt, BinOp::Gt, BinOp::Eq]),
                            name("u"),
                            self.int_expr_local(1),
                        ),
                        vec![assign(name("u"), self.int_expr_local(1))],
                    )],
                    else_body: Vec::new(),
                })),
                _ => body.push(assign(
                    name("u"),
                    bin(BinOp::Mod, name("u"), int(self.rng.range_i64(2, 100))),
                )),
            }
        }
        body.push(stmt(StmtKind::Return(Some(name("u")))));
        ProcDecl {
            name: "F".to_string(),
            formals: vec![Formal {
                var: false,
                names: vec!["x".to_string(), "y".to_string()],
                ty: ty_int(),
            }],
            ret: Some(ty_int()),
            locals: vec![VarDecl {
                names: vec!["u".to_string()],
                ty: ty_int(),
                init: None,
                pos: Pos::default(),
            }],
            body,
            pos: Pos::default(),
        }
    }

    /// Integer expressions over `F`'s locals only.
    fn int_expr_local(&mut self, depth: u32) -> Expr {
        if depth == 0 || self.rng.coin() {
            return match self.rng.below(4) {
                0 => int(self.rng.range_i64(0, 10)),
                1 => name("x"),
                2 => name("y"),
                _ => name("u"),
            };
        }
        bin(
            self.rng.pick_copy(&[BinOp::Add, BinOp::Sub, BinOp::Mul]),
            self.int_expr_local(depth - 1),
            self.int_expr_local(depth - 1),
        )
    }
}

/// Fixed helper: `Bump(VAR v) = v := v + 1` — a `VAR` parameter is an
/// interior pointer across a call boundary when the argument is a heap
/// location (§2).
fn proc_bump() -> ProcDecl {
    ProcDecl {
        name: "Bump".to_string(),
        formals: vec![Formal { var: true, names: vec!["v".to_string()], ty: ty_int() }],
        ret: None,
        locals: Vec::new(),
        body: vec![assign(name("v"), bin(BinOp::Add, name("v"), int(1)))],
        pos: Pos::default(),
    }
}

/// Fixed helper: sums an open array — a loop over a ref parameter, prime
/// strength-reduction fodder.
fn proc_sum() -> ProcDecl {
    ProcDecl {
        name: "Sum".to_string(),
        formals: vec![Formal { var: false, names: vec!["p".to_string()], ty: ty_named("A") }],
        ret: Some(ty_int()),
        locals: vec![VarDecl {
            names: vec!["q".to_string(), "u".to_string()],
            ty: ty_int(),
            init: None,
            pos: Pos::default(),
        }],
        body: vec![
            assign(name("u"), int(0)),
            stmt(StmtKind::For {
                var: "q".to_string(),
                from: int(0),
                to: int(IDX_LEN - 1),
                by: None,
                body: vec![assign(
                    name("u"),
                    bin(BinOp::Add, name("u"), index(name("p"), name("q"))),
                )],
            }),
            stmt(StmtKind::Return(Some(name("u")))),
        ],
        pos: Pos::default(),
    }
}

/// Allocates every global ref so the random body starts from a non-NIL
/// world, and zeroes the scalar state.
fn prologue() -> Vec<Stmt> {
    let mut out = vec![
        assign(name("r"), new_of("R", None)),
        assign(field(name("r"), "nxt"), new_of("R", None)),
        assign(field(name("r"), "arr"), new_of("A", Some(IDX_LEN))),
        assign(name("a"), new_of("A", Some(IDX_LEN))),
        assign(name("b"), new_of("B", None)),
        assign(name("m"), new_of("M", Some(IDX_LEN))),
        stmt(StmtKind::For {
            var: "k".to_string(),
            from: int(0),
            to: int(IDX_LEN - 1),
            by: None,
            body: vec![assign(index(name("m"), name("k")), new_of("A", Some(IDX_LEN)))],
        }),
    ];
    for v in ["i", "j", "s", "t", "w"] {
        out.push(assign(name(v), int(0)));
    }
    out
}

/// The epilogue prints the scalar state and a heap digest so silent value
/// corruption shows up as an output difference.
fn epilogue() -> Vec<Stmt> {
    let mut out = Vec::new();
    for v in ["i", "j", "s", "t"] {
        out.push(stmt(StmtKind::Call(call("PutInt", vec![name(v)]))));
        out.push(stmt(StmtKind::Call(call("PutChar", vec![ex(ExprKind::CharLit(' ' as i64))]))));
    }
    out.push(stmt(StmtKind::Call(call("PutInt", vec![call("Sum", vec![name("a")])]))));
    out.push(stmt(StmtKind::Call(call("PutInt", vec![field(name("r"), "a")]))));
    out.push(stmt(StmtKind::Call(call("PutLn", vec![]))));
    out
}

/// Generates one well-typed random module for `seed`.
#[must_use]
pub fn generate(seed: u64) -> Module {
    let mut g = Gen { rng: Rng::new(seed) };
    let n = g.rng.range_i64(8, 24);
    let mut body = prologue();
    for _ in 0..n {
        g.main_stmt(2, &mut body);
    }
    body.extend(epilogue());

    let types = vec![
        TypeDecl {
            name: "A".to_string(),
            ty: TypeExpr {
                pos: Pos::default(),
                kind: TypeExprKind::Ref(Box::new(TypeExpr {
                    pos: Pos::default(),
                    kind: TypeExprKind::OpenArray(Box::new(ty_int())),
                })),
            },
            pos: Pos::default(),
        },
        TypeDecl {
            name: "B".to_string(),
            ty: TypeExpr {
                pos: Pos::default(),
                kind: TypeExprKind::Ref(Box::new(TypeExpr {
                    pos: Pos::default(),
                    kind: TypeExprKind::Array {
                        lo: Box::new(int(2)),
                        hi: Box::new(int(9)),
                        elem: Box::new(ty_int()),
                    },
                })),
            },
            pos: Pos::default(),
        },
        TypeDecl {
            name: "R".to_string(),
            ty: TypeExpr {
                pos: Pos::default(),
                kind: TypeExprKind::Ref(Box::new(TypeExpr {
                    pos: Pos::default(),
                    kind: TypeExprKind::Record(vec![
                        ("a".to_string(), ty_int()),
                        ("nxt".to_string(), ty_named("R")),
                        ("arr".to_string(), ty_named("A")),
                    ]),
                })),
            },
            pos: Pos::default(),
        },
        TypeDecl {
            name: "M".to_string(),
            ty: TypeExpr {
                pos: Pos::default(),
                kind: TypeExprKind::Ref(Box::new(TypeExpr {
                    pos: Pos::default(),
                    kind: TypeExprKind::OpenArray(Box::new(ty_named("A"))),
                })),
            },
            pos: Pos::default(),
        },
    ];

    let mut vars = Vec::new();
    for (names, ty) in [
        (vec!["r"], ty_named("R")),
        (vec!["a"], ty_named("A")),
        (vec!["b"], ty_named("B")),
        (vec!["m"], ty_named("M")),
        (vec!["i", "j", "s", "t", "w", "k"], ty_int()),
    ] {
        vars.push(VarDecl {
            names: names.into_iter().map(String::from).collect(),
            ty,
            init: None,
            pos: Pos::default(),
        });
    }

    Module {
        name: "Fuzz".to_string(),
        types,
        consts: Vec::new(),
        vars,
        procs: vec![proc_bump(), proc_sum(), g.proc_f()],
        body,
        n_exprs: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3gc_frontend::render::render_module;

    #[test]
    fn generated_programs_compile() {
        for seed in 0..40 {
            let src = render_module(&generate(seed));
            m3gc_frontend::compile_to_ir(&src)
                .unwrap_or_else(|e| panic!("seed {seed} does not compile: {e}\n{src}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = render_module(&generate(7));
        let b = render_module(&generate(7));
        assert_eq!(a, b);
    }
}
