//! Differential fuzzing for the m3gc pipeline.
//!
//! The paper's central claim — compiler-emitted tables describe every
//! pointer and derived value precisely, at every gc-point, under every
//! optimization — is exactly the kind of invariant a compiler bug breaks
//! silently. This crate checks it from two independent directions:
//!
//! 1. **Differential execution** ([`exec`]): seeded random programs
//!    ([`gen`]) run through the reference interpreter and the full VM
//!    matrix ({o0, o2} × six table encodings × two collectors) under gc
//!    torture; outputs and traps must agree everywhere.
//! 2. **The precision oracle**: every VM run executes in shadow mode
//!    (`m3gc_vm::shadow`), so missed pointers surface as stale-pointer
//!    traps and lying table entries are caught by the runtime oracle
//!    (`m3gc_runtime::oracle`) at each collection.
//!
//! Failures report the reproducing case seed (re-run with
//! `m3c fuzz --seed <s> --iters 1`) and, with shrinking enabled,
//! a 1-minimal failing program ([`shrink`]).

pub mod exec;
pub mod gen;
pub mod shrink;

use m3gc_frontend::render::render_module;

/// Fuzzing campaign options.
#[derive(Debug, Clone, Copy)]
pub struct FuzzOptions {
    /// Base seed; iteration `n` uses case seed `seed + n`.
    pub seed: u64,
    /// Number of programs to generate and check.
    pub iters: u64,
    /// Minimize a failing program by whole-statement deletion.
    pub shrink: bool,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions { seed: 1, iters: 100, shrink: true }
    }
}

/// A reproducible fuzzing failure.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The case seed that reproduces this failure standalone.
    pub case_seed: u64,
    /// Which iteration of the campaign hit it.
    pub iteration: u64,
    /// What went wrong, prefixed with the offending configuration.
    pub detail: String,
    /// The generated program.
    pub program: String,
    /// The 1-minimal program, when shrinking was enabled and the
    /// failure survived re-rendering.
    pub minimized: Option<String>,
}

impl std::fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fuzz failure at case seed {} (iteration {}):",
            self.case_seed, self.iteration
        )?;
        writeln!(f, "  {}", self.detail)?;
        writeln!(f, "reproduce with: m3c fuzz --seed {} --iters 1", self.case_seed)?;
        let src = self.minimized.as_deref().unwrap_or(&self.program);
        let kind = if self.minimized.is_some() { "minimized" } else { "generated" };
        write!(f, "--- {kind} program ---\n{src}")
    }
}

/// Campaign summary.
#[derive(Debug, Clone, Copy, Default)]
pub struct FuzzSummary {
    /// Programs checked conclusively.
    pub checked: u64,
    /// Programs skipped because the reference run was inconclusive.
    pub skipped: u64,
}

/// Runs a fuzzing campaign. `progress` is called after each iteration
/// with (iteration, case seed).
///
/// # Errors
///
/// Returns the first [`FuzzFailure`].
pub fn run_campaign(
    opts: &FuzzOptions,
    mut progress: impl FnMut(u64, u64),
) -> Result<FuzzSummary, Box<FuzzFailure>> {
    let mut summary = FuzzSummary::default();
    for iteration in 0..opts.iters {
        let case_seed = opts.seed.wrapping_add(iteration);
        let module = gen::generate(case_seed);
        let program = render_module(&module);
        match exec::check_program(&program) {
            Ok(true) => summary.checked += 1,
            Ok(false) => summary.skipped += 1,
            Err(detail) => {
                let minimized = if opts.shrink {
                    let min = shrink::shrink(&module, |src| exec::check_program(src).is_err());
                    (min != program).then_some(min)
                } else {
                    None
                };
                return Err(Box::new(FuzzFailure {
                    case_seed,
                    iteration,
                    detail,
                    program,
                    minimized,
                }));
            }
        }
        progress(iteration, case_seed);
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_passes() {
        let summary =
            run_campaign(&FuzzOptions { seed: 0xF00D, iters: 4, shrink: false }, |_, _| {})
                .unwrap_or_else(|f| panic!("{f}"));
        assert!(summary.checked + summary.skipped == 4);
    }
}
