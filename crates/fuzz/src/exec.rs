//! The differential executor.
//!
//! Each fuzz case runs once through the reference (the unoptimized IR
//! under the never-collecting interpreter) and then through the full VM
//! matrix: {o0, o2} × all six table encodings × {semispace,
//! generational}, every VM run under gc torture (`force_every_allocs=1`)
//! with shadow mode and the precision oracle armed. All conclusive runs
//! must agree on output and trap kind; a stale-pointer trap, an oracle
//! violation or a scheduler failure is a bug regardless of what the
//! reference did.
//!
//! Resource exhaustion (interpreter fuel, VM fuel, VM heap) is
//! *inconclusive*, not a failure: the reference heap never fills while
//! the VM's does, so those runs are simply skipped.

use m3gc_compiler::{compile, run_module_par_opts, run_module_serve, Options};
use m3gc_core::encode::Scheme;
use m3gc_runtime::scheduler::ExecError;
use m3gc_runtime::{GcStrategy, RuntimeOptions, ServeLoad};
use m3gc_vm::machine::{HeapStrategy, VmTrap};
use m3gc_vm::DEFAULT_TLAB_WORDS;

/// Trap kinds shared by the reference interpreter and the VM, for
/// cross-implementation comparison (the Display strings differ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapKind {
    /// NIL dereference.
    Nil,
    /// Subscript out of range.
    Range,
    /// Assertion failure.
    Assert,
    /// Call-depth / stack-region exhaustion.
    StackOverflow,
    /// Address outside every region (always a compiler bug).
    Wild,
}

/// Outcome of one run, normalized for comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// Ran to completion with this output.
    Ok(String),
    /// Deterministic language-level trap.
    Trap(TrapKind),
    /// Resource exhaustion — not comparable, skip.
    Inconclusive(String),
    /// Unconditional failure: missed-pointer trap, oracle violation,
    /// stuck thread, decode error, or a frontend rejection of a
    /// generated program.
    Hard(String),
}

/// Heap words per semispace for fuzz runs — small enough that torture
/// collections exercise real evacuation, large enough that the generated
/// programs' live sets fit.
pub const FUZZ_SEMI_WORDS: usize = 1 << 12;

/// Runs the reference semantics: unoptimized IR, never collects.
#[must_use]
pub fn run_reference(source: &str) -> RunStatus {
    let prog = match m3gc_frontend::compile_to_ir(source) {
        Ok(p) => p,
        Err(d) => return RunStatus::Hard(format!("frontend rejected generated program: {d}")),
    };
    match m3gc_ir::interp::run_program(&prog) {
        Ok(out) => RunStatus::Ok(out.output),
        Err(t) => match t {
            m3gc_ir::interp::Trap::NilError => RunStatus::Trap(TrapKind::Nil),
            m3gc_ir::interp::Trap::RangeError => RunStatus::Trap(TrapKind::Range),
            m3gc_ir::interp::Trap::AssertError => RunStatus::Trap(TrapKind::Assert),
            m3gc_ir::interp::Trap::StackOverflow => RunStatus::Trap(TrapKind::StackOverflow),
            m3gc_ir::interp::Trap::WildAddress => RunStatus::Trap(TrapKind::Wild),
            m3gc_ir::interp::Trap::OutOfFuel => {
                RunStatus::Inconclusive("reference fuel".to_string())
            }
        },
    }
}

/// Runs one VM configuration under torture with shadow mode and the
/// precision oracle.
#[must_use]
pub fn run_vm(source: &str, options: &Options, heap: HeapStrategy, jit: bool) -> RunStatus {
    let module = match compile(source, options) {
        Ok(m) => m,
        Err(d) => return RunStatus::Hard(format!("compiler rejected generated program: {d}")),
    };
    let mut ropts = RuntimeOptions::new()
        .semi_words(FUZZ_SEMI_WORDS)
        .stack_words(1 << 14)
        .max_threads(4)
        .torture(true)
        .oracle(true)
        .jit(jit);
    if let HeapStrategy::Generational { nursery_words, promote_age } = heap {
        ropts = ropts
            .strategy(GcStrategy::Generational)
            .nursery_words(nursery_words)
            .promote_age(promote_age);
    }
    let machine = ropts.build_machine(module);
    let mut ex = match m3gc_runtime::Executor::try_new(machine, ropts) {
        Ok(ex) => ex,
        Err(e) => return RunStatus::Hard(format!("gc-map decode failed: {e}")),
    };
    match ex.run_main() {
        Ok(out) => RunStatus::Ok(out.output),
        Err(e) => status_of_error(e),
    }
}

/// Maps an execution error to a [`RunStatus`], shared by the
/// single-threaded and parallel runners.
fn status_of_error(e: ExecError) -> RunStatus {
    match e {
        ExecError::Trap(t) => match t {
            VmTrap::NilError => RunStatus::Trap(TrapKind::Nil),
            VmTrap::RangeError => RunStatus::Trap(TrapKind::Range),
            VmTrap::AssertError => RunStatus::Trap(TrapKind::Assert),
            VmTrap::StackOverflow => RunStatus::Trap(TrapKind::StackOverflow),
            VmTrap::WildAddress => RunStatus::Trap(TrapKind::Wild),
            VmTrap::OutOfMemory => RunStatus::Inconclusive("vm heap".to_string()),
            VmTrap::StalePointer => RunStatus::Hard(format!("missed pointer: {t}")),
            VmTrap::BadProc => RunStatus::Hard(format!("vm trap: {t}")),
        },
        ExecError::OutOfFuel => RunStatus::Inconclusive("vm fuel".to_string()),
        e @ (ExecError::StuckThread { .. } | ExecError::Oracle(_)) => {
            RunStatus::Hard(e.to_string())
        }
    }
}

/// Runs one configuration under the *parallel* runtime: a single
/// mutator (generated programs mutate module globals, which parallel
/// mutators share, so only one keeps output deterministic) with
/// `workers` gc workers, under torture with shadow mode and the
/// precision oracle — the parallel handshake, snapshot stack walk and
/// work-stealing copy all differentially checked against the reference.
#[must_use]
pub fn run_par_vm(
    source: &str,
    options: &Options,
    workers: usize,
    tlab_words: usize,
    jit: bool,
) -> RunStatus {
    let module = match compile(source, options) {
        Ok(m) => m,
        Err(d) => return RunStatus::Hard(format!("compiler rejected generated program: {d}")),
    };
    let ropts = RuntimeOptions::new()
        .strategy(GcStrategy::Parallel)
        .semi_words(FUZZ_SEMI_WORDS)
        .stack_words(1 << 15)
        .threads(1)
        .gc_workers(workers)
        .tlab_words(tlab_words)
        .torture(true)
        .oracle(true)
        .jit(jit);
    match run_module_par_opts(module, ropts) {
        Ok(out) => RunStatus::Ok(out.output),
        Err(e) => status_of_error(e),
    }
}

/// Runs one configuration under the *concurrent-marking* collector: a
/// single mutator with `workers` evacuation workers and `conc_workers`
/// background markers, under torture with shadow mode and the precision
/// oracle. Torture forces a full snapshot/final pause pair around nearly
/// every allocation, so the SATB write barrier, the black-allocation
/// window and the final-pause drain are all exercised on every program,
/// and every cycle is differentially checked against full STW
/// reachability by the shadow verifier.
#[must_use]
pub fn run_cms_vm(
    source: &str,
    options: &Options,
    workers: usize,
    conc_workers: usize,
    jit: bool,
    conc_evac: bool,
) -> RunStatus {
    let module = match compile(source, options) {
        Ok(m) => m,
        Err(d) => return RunStatus::Hard(format!("compiler rejected generated program: {d}")),
    };
    let mut ropts = RuntimeOptions::new()
        .strategy(GcStrategy::Cms)
        .semi_words(FUZZ_SEMI_WORDS)
        .stack_words(1 << 15)
        .threads(1)
        .gc_workers(workers)
        .conc_workers(conc_workers)
        .torture(true)
        .shadow(true)
        .oracle(true)
        .jit(jit);
    if conc_evac {
        // Tiny regions: every cycle moves objects out of nearly every
        // region, so forwarding reads, redirected stores and the exit
        // audit all fire on arbitrary generated programs.
        ropts = ropts.conc_evac(true).evac_region_words(16);
    }
    match run_module_par_opts(module, ropts) {
        Ok(out) => RunStatus::Ok(out.output),
        Err(e) => status_of_error(e),
    }
}

/// Runs one configuration under the *allocation-service* executor: 2 OS
/// scheduler threads multiplexing 8 green-thread requests, each request
/// allocating into a tiny per-request region, under torture with the
/// precision oracle armed. Interleaved requests share module globals, so
/// outputs are nondeterministic — callers compare nothing and treat only
/// hard failures (stale pointers, oracle violations, stuck threads) as
/// bugs. This is the differential check that region reclamation and the
/// generalized evacuation set never drop an escaping object.
#[must_use]
pub fn run_serve_vm(source: &str, options: &Options) -> RunStatus {
    let module = match compile(source, options) {
        Ok(m) => m,
        Err(d) => return RunStatus::Hard(format!("compiler rejected generated program: {d}")),
    };
    let ropts = RuntimeOptions::new()
        .semi_words(FUZZ_SEMI_WORDS)
        .stack_words(1 << 15)
        .serve(64, 8)
        .threads(2)
        .gc_workers(2)
        .torture(true)
        .oracle(true);
    let load = ServeLoad { requests: 16, burst: 4, entry: None };
    match run_module_serve(module, ropts, load) {
        Ok(out) => RunStatus::Ok(out.outputs.concat()),
        Err(e) => status_of_error(e),
    }
}

/// The parallel side of the matrix: {o0, o2} at the default encoding
/// with 2 and 4 gc workers, a tiny-TLAB configuration (refill and
/// retire on nearly every allocation) to stress buffer boundaries under
/// torture, and a full-map (`nolive`) configuration so liveness-pruned
/// and unpruned runs are differentially compared on every program.
#[must_use]
pub fn par_config_matrix() -> Vec<(String, Options, usize, usize, bool)> {
    vec![
        ("o2/par-w2".to_string(), Options::o2(), 2, DEFAULT_TLAB_WORDS, false),
        ("o0/par-w4".to_string(), Options::o0(), 4, DEFAULT_TLAB_WORDS, false),
        ("o2/par-w2/tlab8".to_string(), Options::o2(), 2, 8, false),
        (
            "o2/par-w2/nolive".to_string(),
            Options::o2().with_live_maps(false),
            2,
            DEFAULT_TLAB_WORDS,
            false,
        ),
        // JIT twin: same config as `o2/par-w2`, native bursts instead of
        // the interpreter — outputs and traps must be identical.
        ("o2/par-w2/jit".to_string(), Options::o2(), 2, DEFAULT_TLAB_WORDS, true),
    ]
}

/// The concurrent-marking side of the matrix: {o0, o2} with 2
/// evacuation workers and 2 background markers, differentially checked
/// against the reference interpreter under torture, plus a full-map
/// (`nolive`) configuration — the snapshot-pause kill path and the
/// unpruned tables must produce identical output on every program.
#[must_use]
pub fn cms_config_matrix() -> Vec<(String, Options, usize, usize, bool, bool)> {
    vec![
        ("o2/cms-w2m2".to_string(), Options::o2(), 2, 2, false, false),
        ("o0/cms-w2m2".to_string(), Options::o0(), 2, 2, false, false),
        ("o2/cms-w2m2/nolive".to_string(), Options::o2().with_live_maps(false), 2, 2, false, false),
        // JIT twins at both opt levels: concurrent SATB marking with
        // the full-helper store barrier in native code.
        ("o2/cms-w2m2/jit".to_string(), Options::o2(), 2, 2, true, false),
        ("o0/cms-w2m2/jit".to_string(), Options::o0(), 2, 2, true, false),
        // Conc-evac twins at both opt levels: incremental evacuation
        // with tiny regions, the self-healing load/store paths on the
        // hot path of every generated program.
        ("o2/cms-w2m2/evac".to_string(), Options::o2(), 2, 2, false, true),
        ("o0/cms-w2m2/evac".to_string(), Options::o0(), 2, 2, false, true),
    ]
}

/// The full VM configuration matrix: {o0, o2} × all six encodings ×
/// {semispace, generational} with liveness-pruned maps (the default),
/// plus {o0, o2} × {semi, gen} at the default encoding with pruning
/// off — every program runs with and without kills and the outputs are
/// compared through the shared reference.
#[must_use]
pub fn config_matrix() -> Vec<(String, Options, HeapStrategy, bool)> {
    let mut out = Vec::new();
    for (olabel, opts) in [("o0", Options::o0()), ("o2", Options::o2())] {
        for scheme in Scheme::TABLE2 {
            for (hlabel, heap) in [
                ("semi", HeapStrategy::Semispace),
                ("gen", HeapStrategy::generational_for(FUZZ_SEMI_WORDS)),
            ] {
                out.push((
                    format!("{olabel}/{scheme}/{hlabel}"),
                    opts.with_scheme(scheme),
                    heap,
                    false,
                ));
            }
        }
        for (hlabel, heap) in [
            ("semi", HeapStrategy::Semispace),
            ("gen", HeapStrategy::generational_for(FUZZ_SEMI_WORDS)),
        ] {
            out.push((
                format!("{olabel}/nolive/{hlabel}"),
                opts.with_live_maps(false),
                heap,
                false,
            ));
        }
        // JIT twins at the default encoding: every program also runs
        // natively on both heap shapes, and the twin pair must agree on
        // output and trap kind exactly. (The encoding schemes only vary
        // table bytes, which the JIT never reads, so twinning the whole
        // scheme sweep would re-test identical native code.)
        for (hlabel, heap) in [
            ("semi", HeapStrategy::Semispace),
            ("gen", HeapStrategy::generational_for(FUZZ_SEMI_WORDS)),
        ] {
            out.push((format!("{olabel}/{hlabel}/jit"), opts, heap, true));
        }
    }
    out
}

/// Checks one program across the whole matrix. Returns `true` if the
/// case was conclusive, `false` if the reference run was inconclusive
/// and nothing could be compared.
///
/// # Errors
///
/// Returns a description of the first discrepancy or hard failure.
pub fn check_program(source: &str) -> Result<bool, String> {
    let reference = run_reference(source);
    match &reference {
        RunStatus::Hard(msg) => return Err(format!("[reference] {msg}")),
        RunStatus::Inconclusive(_) => return Ok(false), // nothing to compare against
        _ => {}
    }
    for (label, opts, heap, jit) in config_matrix() {
        match run_vm(source, &opts, heap, jit) {
            RunStatus::Hard(msg) => return Err(format!("[{label}] {msg}")),
            RunStatus::Inconclusive(_) => continue,
            got => {
                if got != reference {
                    return Err(format!(
                        "[{label}] diverged from reference: got {got:?}, expected {reference:?}"
                    ));
                }
            }
        }
    }
    for (label, opts, workers, tlab_words, jit) in par_config_matrix() {
        match run_par_vm(source, &opts, workers, tlab_words, jit) {
            RunStatus::Hard(msg) => return Err(format!("[{label}] {msg}")),
            RunStatus::Inconclusive(_) => continue,
            got => {
                if got != reference {
                    return Err(format!(
                        "[{label}] diverged from reference: got {got:?}, expected {reference:?}"
                    ));
                }
            }
        }
    }
    for (label, opts, workers, conc_workers, jit, conc_evac) in cms_config_matrix() {
        match run_cms_vm(source, &opts, workers, conc_workers, jit, conc_evac) {
            RunStatus::Hard(msg) => return Err(format!("[{label}] {msg}")),
            RunStatus::Inconclusive(_) => continue,
            got => {
                if got != reference {
                    return Err(format!(
                        "[{label}] diverged from reference: got {got:?}, expected {reference:?}"
                    ));
                }
            }
        }
    }
    // Serve mode: interleaved requests race on module globals, so output
    // and trap kind are nondeterministic — only hard failures count.
    if let RunStatus::Hard(msg) = run_serve_vm(source, &Options::o2()) {
        return Err(format!("[o2/serve-t2g8] {msg}"));
    }
    Ok(true)
}
