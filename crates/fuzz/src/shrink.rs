//! Whole-statement shrinking.
//!
//! Minimizes a failing program by deleting one statement at a time (a
//! statement deletion removes its entire nested body, so compound
//! statements shrink fast) and re-checking the failure. Deletion
//! preserves well-typedness — statements never introduce declarations
//! that later code depends on — so every candidate is a valid program.

use m3gc_frontend::ast::{Module, Stmt, StmtKind};
use m3gc_frontend::render::render_module;

/// Counts the deletable statements in a module (procedure bodies first,
/// then the main body; nested statements counted recursively).
#[must_use]
pub fn count_stmts(m: &Module) -> usize {
    let mut n = 0;
    for p in &m.procs {
        n += count_list(&p.body);
    }
    n + count_list(&m.body)
}

fn count_list(body: &[Stmt]) -> usize {
    body.iter().map(count_one).sum()
}

fn count_one(s: &Stmt) -> usize {
    1 + match &s.kind {
        StmtKind::If { arms, else_body } => {
            arms.iter().map(|(_, b)| count_list(b)).sum::<usize>() + count_list(else_body)
        }
        StmtKind::While { body, .. }
        | StmtKind::Repeat { body, .. }
        | StmtKind::Loop { body }
        | StmtKind::For { body, .. }
        | StmtKind::With { body, .. } => count_list(body),
        _ => 0,
    }
}

/// Returns a copy of the module with the `n`-th statement (in
/// [`count_stmts`] order) deleted, nested body and all.
#[must_use]
pub fn delete_stmt(m: &Module, n: usize) -> Module {
    let mut out = m.clone();
    let mut counter = n;
    for p in &mut out.procs {
        if delete_in_list(&mut p.body, &mut counter) {
            return out;
        }
    }
    delete_in_list(&mut out.body, &mut counter);
    out
}

fn delete_in_list(body: &mut Vec<Stmt>, counter: &mut usize) -> bool {
    let mut i = 0;
    while i < body.len() {
        if *counter == 0 {
            body.remove(i);
            return true;
        }
        *counter -= 1;
        let done = match &mut body[i].kind {
            StmtKind::If { arms, else_body } => {
                arms.iter_mut().any(|(_, b)| delete_in_list(b, counter))
                    || delete_in_list(else_body, counter)
            }
            StmtKind::While { body, .. }
            | StmtKind::Repeat { body, .. }
            | StmtKind::Loop { body }
            | StmtKind::For { body, .. }
            | StmtKind::With { body, .. } => delete_in_list(body, counter),
            _ => false,
        };
        if done {
            return true;
        }
        i += 1;
    }
    false
}

/// Greedily minimizes a failing module: repeatedly deletes the first
/// statement whose removal keeps `still_fails` true, to a fixpoint.
/// Returns the minimized source.
pub fn shrink(module: &Module, mut still_fails: impl FnMut(&str) -> bool) -> String {
    let min = m3gc_testkit::minimize(module.clone(), count_stmts, delete_stmt, |m| {
        still_fails(&render_module(m))
    });
    render_module(&min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3gc_frontend::{lexer::lex, parser::parse};

    fn parse_src(src: &str) -> Module {
        parse(lex(src).unwrap()).unwrap()
    }

    #[test]
    fn counts_nested_statements() {
        let m = parse_src(
            "MODULE M; VAR x: INTEGER;
             BEGIN
               x := 1;
               IF x > 0 THEN x := 2; x := 3; ELSE x := 4; END;
               WHILE x > 0 DO x := x - 1; END;
             END M.",
        );
        // x:=1 | IF (+3 inner) | WHILE (+1 inner) = 3 + 4 = 7
        assert_eq!(count_stmts(&m), 7);
    }

    #[test]
    fn delete_reaches_every_statement() {
        let m = parse_src(
            "MODULE M; VAR x: INTEGER;
             BEGIN
               x := 1;
               IF x > 0 THEN x := 2; END;
               x := 3;
             END M.",
        );
        let total = count_stmts(&m);
        assert_eq!(total, 4);
        for n in 0..total {
            let d = delete_stmt(&m, n);
            assert_eq!(count_stmts(&d), total - count_stmts_of_deleted(&m, n), "n = {n}");
        }
        // Deleting the IF removes its nested statement too.
        let d = delete_stmt(&m, 1);
        assert_eq!(count_stmts(&d), 2);
    }

    fn count_stmts_of_deleted(m: &Module, n: usize) -> usize {
        // The n-th statement's own size = total - size of module with it deleted.
        count_stmts(m) - count_stmts(&delete_stmt(m, n))
    }

    #[test]
    fn shrink_converges_to_failing_core() {
        let m = parse_src(
            "MODULE M; VAR x, y: INTEGER;
             BEGIN
               x := 1;
               y := 2;
               x := 3;
               y := 40;
               x := 5;
             END M.",
        );
        // "Failure" = the source still assigns 40 to y.
        let min = shrink(&m, |src| src.contains(":= 40"));
        let reparsed = parse_src(&min);
        assert_eq!(count_stmts(&reparsed), 1, "minimized to one statement: {min}");
    }
}
