//! Dependency-free randomness for tests and benchmarks.
//!
//! The workspace builds with no registry access, so instead of `rand` and
//! `proptest` the randomized tests use this crate: a deterministic
//! xorshift64* generator plus a tiny property-test harness that reruns a
//! property over many derived seeds and reports the failing seed.
//!
//! The generator is not cryptographic and does not need to be — it only
//! has to be fast, reproducible, and well distributed enough to explore
//! encode/decode state spaces.

/// A deterministic xorshift64* pseudo-random generator.
///
/// Marsaglia's xorshift with the `* 0x2545F4914F6CDD1D` output scramble;
/// passes the statistical tests that matter for fuzzing-style use.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Seed 0 is remapped (xorshift has a
    /// fixed point at 0).
    #[must_use]
    pub fn new(seed: u64) -> Rng {
        // SplitMix64 step to decorrelate small consecutive seeds.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Rng { state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z } }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `i64` over the full range.
    pub fn next_i64(&mut self) -> i64 {
        self.next_u64() as i64
    }

    /// Uniform `i32` over the full range.
    pub fn next_i32(&mut self) -> i32 {
        self.next_u32() as i32
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Multiply-shift rejection-free mapping; bias is negligible for
        // the small bounds tests use.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform value in `[lo, hi)` (half-open). `lo < hi` required.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// Uniform `i32` in `[lo, hi)`.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        self.range_i64(i64::from(lo), i64::from(hi)) as i32
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(u64::from(hi - lo)) as u32
    }

    /// Fair coin.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }

    /// Picks a uniformly random element of a non-empty slice of `Copy`
    /// values, returning it by value (avoids `&&str` at call sites).
    pub fn pick_copy<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[self.index(xs.len())]
    }
}

/// Runs `property` once per case with a generator seeded from the case
/// number, panicking with the failing seed so a failure can be replayed
/// as `Rng::new(seed)`.
pub fn run_cases(name: &str, cases: u64, mut property: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        let seed = 0xA11C_E000 + case;
        let mut rng = Rng::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut rng);
        }));
        if let Err(panic) = result {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property `{name}` failed at seed {seed} (case {case}/{cases}): {msg}");
        }
    }
}

/// Greedily minimizes a failing case by deleting one element at a time.
///
/// `count` reports how many deletable elements the case currently has,
/// `delete` produces a copy with the `n`-th element removed, and
/// `still_fails` re-checks the property. Deletion restarts from the front
/// after every successful removal and stops at a fixpoint, so the result
/// is 1-minimal with respect to single deletions. Generic so the fuzzer
/// can shrink whole-statement lists while unit tests shrink plain
/// vectors.
pub fn minimize<T: Clone>(
    mut case: T,
    count: impl Fn(&T) -> usize,
    delete: impl Fn(&T, usize) -> T,
    mut still_fails: impl FnMut(&T) -> bool,
) -> T {
    loop {
        let n = count(&case);
        let mut shrunk = false;
        for i in 0..n {
            let candidate = delete(&case, i);
            if still_fails(&candidate) {
                case = candidate;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return case;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::new(42);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::new(42);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        let c: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::new(43);
                move |_| r.next_u64()
            })
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn bounds_respected() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let v = r.below(13);
            assert!(v < 13);
            let w = r.range_i32(-5, 6);
            assert!((-5..6).contains(&w));
            let x = r.range_u32(3, 9);
            assert!((3..9).contains(&x));
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut r = Rng::new(1);
        let mut buckets = [0u32; 16];
        for _ in 0..16_000 {
            buckets[r.index(16)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((700..1300).contains(&b), "bucket {i} has {b} hits");
        }
    }

    #[test]
    fn minimize_reaches_one_minimal_subset() {
        // Failing iff the vector contains both 3 and 7: minimization must
        // strip everything else and keep exactly those two.
        let case: Vec<i32> = (0..10).collect();
        let min = minimize(
            case,
            Vec::len,
            |v, i| {
                let mut w = v.clone();
                w.remove(i);
                w
            },
            |v| v.contains(&3) && v.contains(&7),
        );
        assert_eq!(min, vec![3, 7]);
    }

    #[test]
    fn run_cases_reports_seed() {
        let err = std::panic::catch_unwind(|| {
            run_cases("always-fails", 1, |_| panic!("boom"));
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("always-fails") && msg.contains("seed"), "{msg}");
    }
}
