//! Structural validation of IR functions and programs.
//!
//! Beyond ordinary well-formedness (indices in range, condition temps are
//! integers), the verifier enforces the invariants the gc-map machinery
//! relies on:
//!
//! * declared-`Ptr` temps are only defined by *tidy* producers (loads,
//!   allocations, copies of pointers, NIL constants) — never by pointer
//!   arithmetic;
//! * derived values never escape to memory (heap, frame slots or globals):
//!   they live in temps only, where the tables can describe them;
//! * pointers only ever participate in `+`/`-`/`neg` — the invertible
//!   operations the derivation tables can undo (§3).

use crate::deriv::DerivAnalysis;
use crate::func::{Function, Program};
use crate::ids::Temp;
use crate::instr::{BinOp, Instr};

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The function in which the failure occurred.
    pub func: String,
    /// Description of the failure.
    pub what: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ir verification failed in `{}`: {}", self.func, self.what)
    }
}

impl std::error::Error for VerifyError {}

fn err(f: &Function, what: impl Into<String>) -> VerifyError {
    VerifyError { func: f.name.clone(), what: what.into() }
}

/// Verifies one function. `deriv` (if supplied) enables the derived-value
/// escape checks.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found.
pub fn verify_function(
    f: &Function,
    program: Option<&Program>,
    deriv: Option<&DerivAnalysis>,
) -> Result<(), VerifyError> {
    let n_temps = f.temp_count();
    let check_temp = |t: Temp| -> Result<(), VerifyError> {
        if t.index() >= n_temps {
            Err(err(f, format!("temp {t} out of range ({n_temps} temps)")))
        } else {
            Ok(())
        }
    };
    let is_derived = |t: Temp| deriv.is_some_and(|d| d.is_derived(t));
    let ptr_like = |t: Temp| f.is_ptr(t) || is_derived(t);

    if f.entry.index() >= f.blocks.len() {
        return Err(err(f, "entry block out of range"));
    }
    for (bi, block) in f.blocks.iter().enumerate() {
        for ins in &block.instrs {
            let mut uses = Vec::new();
            ins.uses(&mut uses);
            for t in uses.iter().chain(ins.def().iter()) {
                check_temp(*t)?;
            }
            match ins {
                Instr::Bin { dst, op, a, b } => {
                    if (ptr_like(*a) || ptr_like(*b))
                        && !matches!(op, BinOp::Add | BinOp::Sub)
                        && !op.is_comparison()
                    {
                        return Err(err(
                            f,
                            format!(
                                "non-invertible operator {op} on pointer-like operand in b{bi}"
                            ),
                        ));
                    }
                    if f.is_ptr(*dst) {
                        return Err(err(
                            f,
                            format!("arithmetic defines declared pointer {dst} in b{bi}"),
                        ));
                    }
                }
                Instr::Un { dst, .. } if f.is_ptr(*dst) => {
                    return Err(err(
                        f,
                        format!("unary op defines declared pointer {dst} in b{bi}"),
                    ));
                }
                Instr::Const { dst, value } if f.is_ptr(*dst) && *value != 0 => {
                    return Err(err(
                        f,
                        format!("non-NIL constant into declared pointer {dst} in b{bi}"),
                    ));
                }
                Instr::Copy { dst, src } if f.is_ptr(*dst) && !f.is_ptr(*src) => {
                    return Err(err(
                        f,
                        format!("copy of non-pointer {src} into declared pointer {dst} in b{bi}"),
                    ));
                }
                Instr::Store { src, .. } if is_derived(*src) => {
                    return Err(err(f, format!("derived value {src} stored to heap in b{bi}")));
                }
                Instr::StoreSlot { slot, offset, src } => {
                    let info = f
                        .slots
                        .get(slot.index())
                        .ok_or_else(|| err(f, format!("slot {slot} out of range in b{bi}")))?;
                    if *offset >= info.words {
                        return Err(err(
                            f,
                            format!("slot {slot} offset {offset} out of range in b{bi}"),
                        ));
                    }
                    if is_derived(*src) {
                        return Err(err(f, format!("derived value {src} stored to slot in b{bi}")));
                    }
                }
                Instr::LoadSlot { slot, offset, .. } => {
                    let info = f
                        .slots
                        .get(slot.index())
                        .ok_or_else(|| err(f, format!("slot {slot} out of range in b{bi}")))?;
                    if *offset >= info.words {
                        return Err(err(
                            f,
                            format!("slot {slot} offset {offset} out of range in b{bi}"),
                        ));
                    }
                }
                Instr::SlotAddr { slot, .. } if slot.index() >= f.slots.len() => {
                    return Err(err(f, format!("slot {slot} out of range in b{bi}")));
                }
                Instr::StoreGlobal { src, .. } if is_derived(*src) => {
                    return Err(err(f, format!("derived value {src} stored to global in b{bi}")));
                }
                Instr::Call { func, args, .. } => {
                    if let Some(p) = program {
                        let callee = p.funcs.get(func.index()).ok_or_else(|| {
                            err(f, format!("call target {func} out of range in b{bi}"))
                        })?;
                        if callee.n_params != args.len() {
                            return Err(err(
                                f,
                                format!(
                                    "call to `{}` passes {} args, expects {} in b{bi}",
                                    callee.name,
                                    args.len(),
                                    callee.n_params
                                ),
                            ));
                        }
                    }
                }
                Instr::CallRuntime { func, args, .. } if args.len() != func.arity() => {
                    return Err(err(
                        f,
                        format!("runtime call {func} passes {} args in b{bi}", args.len()),
                    ));
                }
                Instr::New { ty, .. } => {
                    if let Some(p) = program {
                        if ty.0 as usize >= p.types.len() {
                            return Err(err(f, format!("type {ty} out of range in b{bi}")));
                        }
                    }
                }
                _ => {}
            }
        }
        let mut term_uses = Vec::new();
        block.term.uses(&mut term_uses);
        for t in term_uses {
            check_temp(t)?;
        }
        for s in block.term.successors() {
            if s.index() >= f.blocks.len() {
                return Err(err(f, format!("successor {s} of b{bi} out of range")));
            }
        }
    }
    Ok(())
}

/// Verifies every function of a program.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found.
pub fn verify_program(p: &Program) -> Result<(), VerifyError> {
    if p.main.index() >= p.funcs.len() {
        return Err(VerifyError { func: "<program>".into(), what: "main out of range".into() });
    }
    for f in &p.funcs {
        verify_function(f, Some(p), None)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::deriv::analyze_and_resolve;
    use crate::func::TempKind;
    use crate::ids::FuncId;

    #[test]
    fn accepts_well_formed() {
        let mut b = FuncBuilder::with_ret("f", &[TempKind::Int], Some(TempKind::Int));
        let t = b.bin(BinOp::Add, b.param(0), b.param(0));
        b.ret(Some(t));
        let f = b.finish();
        assert_eq!(verify_function(&f, None, None), Ok(()));
    }

    #[test]
    fn rejects_pointer_multiplication() {
        let mut b = FuncBuilder::new("f", &[TempKind::Ptr, TempKind::Int]);
        let t = b.bin(BinOp::Mul, b.param(0), b.param(1));
        b.ret(Some(t));
        let f = b.finish();
        let e = verify_function(&f, None, None).unwrap_err();
        assert!(e.what.contains("non-invertible"), "{e}");
    }

    #[test]
    fn rejects_arithmetic_into_declared_pointer() {
        let mut b = FuncBuilder::new("f", &[TempKind::Int, TempKind::Int]);
        let dst = b.temp(TempKind::Ptr);
        b.push(Instr::Bin { dst, op: BinOp::Add, a: Temp(0), b: Temp(1) });
        b.ret(None);
        let f = b.finish();
        let e = verify_function(&f, None, None).unwrap_err();
        assert!(e.what.contains("defines declared pointer"), "{e}");
    }

    #[test]
    fn rejects_derived_escape_to_heap() {
        let mut b = FuncBuilder::new("f", &[TempKind::Ptr, TempKind::Int]);
        let d = b.bin(BinOp::Add, b.param(0), b.param(1));
        b.store(b.param(0), 1, d);
        b.ret(None);
        let mut f = b.finish();
        let deriv = analyze_and_resolve(&mut f);
        let e = verify_function(&f, None, Some(&deriv)).unwrap_err();
        assert!(e.what.contains("stored to heap"), "{e}");
    }

    #[test]
    fn rejects_bad_arity() {
        let mut p = Program::new();
        let mut callee =
            Function::new("two_args", FuncId(0), &[TempKind::Int, TempKind::Int], None);
        callee.blocks[0].term = crate::instr::Terminator::Ret(None);
        let callee_id = p.add_func(callee);
        let mut b = FuncBuilder::new("caller", &[]);
        let t = b.constant(1);
        b.call(callee_id, vec![t], None);
        b.ret(None);
        let caller = b.finish();
        let id = p.add_func(caller);
        p.main = id;
        let e = verify_program(&p).unwrap_err();
        assert!(e.what.contains("expects 2"), "{e}");
    }

    #[test]
    fn rejects_slot_offset_out_of_range() {
        use crate::func::SlotInfo;
        let mut b = FuncBuilder::new("f", &[]);
        let s = b.slot(SlotInfo::scalar("x", TempKind::Int, false));
        let t = b.constant(1);
        b.push(Instr::StoreSlot { slot: s, offset: 5, src: t });
        b.ret(None);
        let f = b.finish();
        assert!(verify_function(&f, None, None).is_err());
    }
}
