//! Three-address intermediate representation for the m3gc compiler.
//!
//! The IR is a conventional CFG of basic blocks over virtual registers
//! (*temps*), designed so that **pointerness is statically known**: every
//! temp is declared [`TempKind::Int`] or [`TempKind::Ptr`] at creation, and
//! values created by pointer arithmetic (*derived values*) are discovered
//! by [`deriv::DerivAnalysis`], which implements the paper's derivation
//! model: a derived value's bases are the pointer-like operands of its
//! defining instruction, a use of a derived value counts as a use of its
//! bases (the *dead base* rule, §4), and temps with conflicting derivations
//! at different definitions get *path variables* (the *ambiguous
//! derivation* rule, §4).
//!
//! Modules:
//!
//! * [`ids`] — typed indices,
//! * [`instr`] — instructions and terminators,
//! * [`func`] — functions, blocks, programs,
//! * [`builder`] — ergonomic construction (used by lowering and tests),
//! * [`mod@cfg`] — predecessors/successors, RPO, dominators, natural loops,
//! * [`bitset`] — dense bit sets for dataflow,
//! * [`liveness`] — backward liveness with the derived-uses-base rule,
//! * [`deriv`] — derivation inference and path-variable insertion,
//! * [`verify`] — structural validation,
//! * [`pretty`] — human-readable dumps,
//! * [`interp`] — a reference interpreter (no GC) for differential tests.

pub mod bitset;
pub mod builder;
pub mod cfg;
pub mod deriv;
pub mod func;
pub mod ids;
pub mod instr;
pub mod interp;
pub mod liveness;
pub mod pretty;
pub mod verify;

pub use func::{Block, Function, GlobalInfo, Program, SlotInfo, TempKind};
pub use ids::{BlockId, FuncId, GlobalId, SlotId, Temp};
pub use instr::{BinOp, Instr, RuntimeFn, Terminator, UnOp};
