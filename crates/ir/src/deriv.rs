//! Derivation inference and path-variable insertion (paper §3–4).
//!
//! A temp is *pointer-like* if it is a declared tidy pointer or a derived
//! value. A def `t := a ± b` with pointer-like operands makes `t` derived,
//! with the pointer-like operands as its bases (note a base may itself be a
//! derived value — the collector orders updates to cope, §3). Because the
//! IR is not SSA, a temp may have several defs with *different* base lists;
//! that is exactly the paper's *ambiguous derivation* (§4), and we resolve
//! it the way the paper does: introduce a *path variable*, assign it a
//! variant index at each def, and emit one derivation variant per distinct
//! base list.

use m3gc_core::derive::Sign;

use crate::func::{Function, TempKind};
use crate::ids::Temp;
use crate::instr::{BinOp, Instr, UnOp};

/// How a derived temp's value was produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DerivKind {
    /// One derivation reaches every use.
    Simple(Vec<(Temp, Sign)>),
    /// Multiple derivations; `path_var` holds the index of the one that
    /// actually happened.
    Ambiguous {
        /// The compiler-introduced path variable.
        path_var: Temp,
        /// Distinct base lists, indexed by the path variable's value.
        variants: Vec<Vec<(Temp, Sign)>>,
    },
}

impl DerivKind {
    /// Every temp that can appear as a base, across all variants.
    pub fn base_temps(&self) -> impl Iterator<Item = Temp> + '_ {
        let slices: Vec<&[(Temp, Sign)]> = match self {
            DerivKind::Simple(b) => vec![b.as_slice()],
            DerivKind::Ambiguous { variants, .. } => variants.iter().map(Vec::as_slice).collect(),
        };
        slices.into_iter().flatten().map(|&(t, _)| t).collect::<Vec<_>>().into_iter()
    }
}

/// The result of derivation inference over one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivAnalysis {
    /// Per-temp derivation, `None` for non-derived temps. Indexed by temp.
    pub derivs: Vec<Option<DerivKind>>,
    /// By-reference parameter flags (copied from the function): such
    /// parameters are pointer-like (values derived from them record them
    /// as bases) but are updated by the **caller's** derivation record for
    /// the argument slot, never traced directly.
    pub byref: Vec<bool>,
}

impl DerivAnalysis {
    /// Is `t` a derived value?
    #[must_use]
    pub fn is_derived(&self, t: Temp) -> bool {
        self.derivs.get(t.index()).is_some_and(Option::is_some)
    }

    /// The derivation of `t`, if derived.
    #[must_use]
    pub fn deriv(&self, t: Temp) -> Option<&DerivKind> {
        self.derivs.get(t.index()).and_then(Option::as_ref)
    }

    /// Is `t` a by-reference parameter?
    #[must_use]
    pub fn is_byref(&self, t: Temp) -> bool {
        self.byref.get(t.index()).copied().unwrap_or(false)
    }

    /// Is `t` pointer-like (tidy pointer, derived value, or by-ref
    /// parameter) in `f`?
    #[must_use]
    pub fn is_ptr_like(&self, f: &Function, t: Temp) -> bool {
        f.is_ptr(t) || self.is_derived(t) || self.is_byref(t)
    }

    /// Appends `t`'s transitive support to `out`: for a derived temp, its
    /// path variable (if any) and all variant bases, recursively through
    /// derived bases. This is what the *dead base* rule (§4) turns into at
    /// liveness time: a use of a derived value is a use of its bases.
    pub fn expand_support(&self, t: Temp, out: &mut Vec<Temp>) {
        let mut stack = vec![t];
        let mut seen = vec![false; self.derivs.len()];
        while let Some(x) = stack.pop() {
            if x.index() < seen.len() {
                if seen[x.index()] {
                    continue;
                }
                seen[x.index()] = true;
            }
            if let Some(kind) = self.deriv(x) {
                if let DerivKind::Ambiguous { path_var, .. } = kind {
                    out.push(*path_var);
                }
                for b in kind.base_temps() {
                    out.push(b);
                    stack.push(b);
                }
            }
        }
    }
}

/// The base list contributed by one defining instruction, given the current
/// pointer-like set. `None` means "this instruction cannot define a derived
/// value" (e.g. loads, calls).
fn def_bases(ins: &Instr, ptr_like: &[bool]) -> Option<Vec<(Temp, Sign)>> {
    let pl = |t: Temp| ptr_like[t.index()];
    match ins {
        Instr::Copy { src, .. } => {
            if pl(*src) {
                Some(vec![(*src, Sign::Plus)])
            } else {
                Some(vec![])
            }
        }
        Instr::Bin { op: BinOp::Add, a, b, .. } => {
            let mut bases = Vec::new();
            if pl(*a) {
                bases.push((*a, Sign::Plus));
            }
            if pl(*b) {
                bases.push((*b, Sign::Plus));
            }
            Some(bases)
        }
        Instr::Bin { op: BinOp::Sub, a, b, .. } => {
            let mut bases = Vec::new();
            if pl(*a) {
                bases.push((*a, Sign::Plus));
            }
            if pl(*b) {
                bases.push((*b, Sign::Minus));
            }
            Some(bases)
        }
        Instr::Un { op: UnOp::Neg, a, .. } => {
            if pl(*a) {
                Some(vec![(*a, Sign::Minus)])
            } else {
                Some(vec![])
            }
        }
        Instr::Const { .. } => Some(vec![]),
        // Loads, address-ofs, calls, allocations produce tidy pointers or
        // plain integers, never derived values.
        _ => Some(vec![]),
    }
}

/// Computes the pointer-like set of `f` without mutating it.
fn ptr_like_fixpoint(f: &Function) -> Vec<bool> {
    let n = f.temp_count();
    let mut ptr_like: Vec<bool> = (0..n)
        .map(|i| {
            f.temp_kinds[i] == TempKind::Ptr || f.byref_params.get(i).copied().unwrap_or(false)
        })
        .collect();
    loop {
        let mut changed = false;
        for block in &f.blocks {
            for ins in &block.instrs {
                let Some(dst) = ins.def() else { continue };
                if f.temp_kinds[dst.index()] == TempKind::Ptr {
                    continue;
                }
                if let Some(bases) = def_bases(ins, &ptr_like) {
                    if !bases.is_empty() && !ptr_like[dst.index()] {
                        ptr_like[dst.index()] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return ptr_like;
        }
    }
}

/// Finds temps whose defs produce **conflicting** derivations (ambiguous
/// derivations, §4), without mutating the function. The path-splitting
/// alternative (Figure 2) uses this to decide what to duplicate;
/// [`analyze_and_resolve`] would instead give these temps path variables.
#[must_use]
pub fn find_ambiguous(f: &Function) -> Vec<Temp> {
    let ptr_like = ptr_like_fixpoint(f);
    let n = f.temp_count();
    let derived = |t: Temp| {
        ptr_like[t.index()]
            && f.temp_kinds[t.index()] != TempKind::Ptr
            && !f.byref_params.get(t.index()).copied().unwrap_or(false)
    };
    let mut variants: Vec<Vec<Vec<(Temp, Sign)>>> = vec![Vec::new(); n];
    for (p, v) in variants.iter_mut().enumerate().take(f.n_params) {
        if derived(Temp(p as u32)) {
            v.push(Vec::new());
        }
    }
    for block in &f.blocks {
        for ins in &block.instrs {
            let Some(dst) = ins.def() else { continue };
            if !derived(dst) {
                continue;
            }
            let bases = def_bases(ins, &ptr_like).unwrap_or_default();
            if !variants[dst.index()].contains(&bases) {
                variants[dst.index()].push(bases);
            }
        }
    }
    (0..n as u32).map(Temp).filter(|t| derived(*t) && variants[t.index()].len() > 1).collect()
}

/// Infers derivations for every temp of `f`, inserting path-variable
/// assignments where a temp has conflicting derivations (§4), and returns
/// the analysis. Declared-`Ptr` temps are never derived (the verifier
/// rejects pointer arithmetic targeting them).
pub fn analyze_and_resolve(f: &mut Function) -> DerivAnalysis {
    let n = f.temp_count();
    // Fixpoint on the pointer-like set: derivedness feeds back into base
    // extraction (a base may be a derived temp).
    let mut ptr_like: Vec<bool> = (0..n)
        .map(|i| {
            f.temp_kinds[i] == TempKind::Ptr || f.byref_params.get(i).copied().unwrap_or(false)
        })
        .collect();
    loop {
        let mut changed = false;
        for block in &f.blocks {
            for ins in &block.instrs {
                let Some(dst) = ins.def() else { continue };
                if f.temp_kinds[dst.index()] == TempKind::Ptr {
                    continue; // tidy by declaration
                }
                if let Some(bases) = def_bases(ins, &ptr_like) {
                    if !bases.is_empty() && !ptr_like[dst.index()] {
                        ptr_like[dst.index()] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Collect per-def base lists for each derived temp (derived = Int temp
    // that is pointer-like).
    let kinds: Vec<TempKind> = f.temp_kinds.clone();
    let byref = f.byref_params.clone();
    let ptr_like_final = ptr_like.clone();
    let byref_flag = byref.clone();
    let derived = move |t: Temp| {
        ptr_like_final[t.index()]
            && kinds[t.index()] != TempKind::Ptr
            && !byref_flag.get(t.index()).copied().unwrap_or(false)
    };
    // variants[t] = distinct base lists in first-seen order.
    let mut variants: Vec<Vec<Vec<(Temp, Sign)>>> = vec![Vec::new(); n];
    // A derived temp that is also a parameter has an implicit entry def
    // with unknown (empty) bases.
    for (p, v) in variants.iter_mut().enumerate().take(f.n_params) {
        if derived(Temp(p as u32)) {
            v.push(Vec::new());
        }
    }
    for block in &f.blocks {
        for ins in &block.instrs {
            let Some(dst) = ins.def() else { continue };
            if !derived(dst) {
                continue;
            }
            let bases = def_bases(ins, &ptr_like).unwrap_or_default();
            if !variants[dst.index()].contains(&bases) {
                variants[dst.index()].push(bases);
            }
        }
    }

    // Assign path variables to ambiguous temps and record the variant index
    // chosen at each def.
    let mut path_vars: Vec<Option<Temp>> = vec![None; n];
    let ambiguous: Vec<Temp> =
        (0..n as u32).map(Temp).filter(|&t| derived(t) && variants[t.index()].len() > 1).collect();
    for &t in &ambiguous {
        path_vars[t.index()] = Some(f.new_temp(TempKind::Int));
    }
    if !ambiguous.is_empty() {
        // Insert `pv := variant_index` immediately after each def.
        for block in &mut f.blocks {
            let mut i = 0;
            while i < block.instrs.len() {
                let ins = &block.instrs[i];
                if let Some(dst) = ins.def() {
                    if let Some(pv) = path_vars[dst.index()] {
                        let bases = def_bases(ins, &ptr_like).unwrap_or_default();
                        let idx = variants[dst.index()]
                            .iter()
                            .position(|v| *v == bases)
                            .expect("variant recorded during collection");
                        block.instrs.insert(i + 1, Instr::Const { dst: pv, value: idx as i64 });
                        i += 1;
                    }
                }
                i += 1;
            }
        }
        // Parameters' implicit entry defs take variant 0 (the empty list):
        // initialize their path variables at function entry.
        let entry = f.entry;
        for p in (0..f.n_params).rev() {
            let t = Temp(p as u32);
            if let Some(pv) = path_vars[t.index()] {
                f.block_mut(entry).instrs.insert(0, Instr::Const { dst: pv, value: 0 });
            }
        }
    }

    // Build the final analysis (path vars themselves are plain ints).
    let mut derivs: Vec<Option<DerivKind>> = vec![None; f.temp_count()];
    for t in (0..n as u32).map(Temp) {
        if !derived(t) {
            continue;
        }
        let v = std::mem::take(&mut variants[t.index()]);
        derivs[t.index()] = Some(match path_vars[t.index()] {
            None => DerivKind::Simple(v.into_iter().next().unwrap_or_default()),
            Some(pv) => DerivKind::Ambiguous { path_var: pv, variants: v },
        });
    }
    DerivAnalysis { derivs, byref }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::func::Function;
    use crate::ids::FuncId;
    use crate::instr::Terminator;

    /// `d := p + i` where p is a pointer: d is derived from p.
    #[test]
    fn simple_derivation() {
        let mut b = FuncBuilder::new("t", &[TempKind::Ptr, TempKind::Int]);
        let d = b.bin(BinOp::Add, Temp(0), Temp(1));
        b.ret(None);
        let mut f = b.finish();
        let a = analyze_and_resolve(&mut f);
        assert!(a.is_derived(d));
        assert_eq!(a.deriv(d), Some(&DerivKind::Simple(vec![(Temp(0), Sign::Plus)])));
    }

    /// `d := p - q`: derived from both, q negatively (double indexing, §2).
    #[test]
    fn pointer_difference() {
        let mut b = FuncBuilder::new("t", &[TempKind::Ptr, TempKind::Ptr]);
        let d = b.bin(BinOp::Sub, Temp(0), Temp(1));
        b.ret(None);
        let mut f = b.finish();
        let a = analyze_and_resolve(&mut f);
        assert_eq!(
            a.deriv(d),
            Some(&DerivKind::Simple(vec![(Temp(0), Sign::Plus), (Temp(1), Sign::Minus)]))
        );
    }

    /// Chained derivation: d2 := d1 + k keeps d1 (itself derived) as base.
    #[test]
    fn chained_derivation_and_support() {
        let mut b = FuncBuilder::new("t", &[TempKind::Ptr, TempKind::Int]);
        let d1 = b.bin(BinOp::Add, Temp(0), Temp(1));
        let d2 = b.bin(BinOp::Add, d1, Temp(1));
        b.ret(None);
        let mut f = b.finish();
        let a = analyze_and_resolve(&mut f);
        assert_eq!(a.deriv(d2), Some(&DerivKind::Simple(vec![(d1, Sign::Plus)])));
        let mut support = Vec::new();
        a.expand_support(d2, &mut support);
        assert!(support.contains(&d1), "derived base in support");
        assert!(support.contains(&Temp(0)), "transitive tidy base in support");
    }

    /// The paper's ambiguous case: t is derived from P in one branch and Q
    /// in the other; a path variable must be introduced.
    #[test]
    fn ambiguous_derivation_gets_path_variable() {
        let mut f =
            Function::new("t", FuncId(0), &[TempKind::Ptr, TempKind::Ptr, TempKind::Int], None);
        let t = f.new_temp(TempKind::Int);
        let bt = f.new_block();
        let bf = f.new_block();
        let join = f.new_block();
        f.block_mut(f.entry).term = Terminator::Br { cond: Temp(2), then_bb: bt, else_bb: bf };
        f.block_mut(bt).instrs.push(Instr::Bin { dst: t, op: BinOp::Add, a: Temp(0), b: Temp(2) });
        f.block_mut(bt).term = Terminator::Jump(join);
        f.block_mut(bf).instrs.push(Instr::Bin { dst: t, op: BinOp::Add, a: Temp(1), b: Temp(2) });
        f.block_mut(bf).term = Terminator::Jump(join);
        f.block_mut(join).term = Terminator::Ret(None);

        let a = analyze_and_resolve(&mut f);
        let Some(DerivKind::Ambiguous { path_var, variants }) = a.deriv(t) else {
            panic!("expected ambiguous derivation, got {:?}", a.deriv(t));
        };
        assert_eq!(variants.len(), 2);
        assert_eq!(variants[0], vec![(Temp(0), Sign::Plus)]);
        assert_eq!(variants[1], vec![(Temp(1), Sign::Plus)]);
        // Each branch must now set the path variable to its variant index.
        let assigned: Vec<i64> = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter_map(|i| match i {
                Instr::Const { dst, value } if dst == path_var => Some(*value),
                _ => None,
            })
            .collect();
        assert_eq!(assigned, vec![0, 1]);
    }

    /// Same base list in both branches: no ambiguity, no path variable.
    #[test]
    fn agreeing_defs_stay_simple() {
        let mut f = Function::new("t", FuncId(0), &[TempKind::Ptr, TempKind::Int], None);
        let t = f.new_temp(TempKind::Int);
        let bt = f.new_block();
        let bf = f.new_block();
        let join = f.new_block();
        f.block_mut(f.entry).term = Terminator::Br { cond: Temp(1), then_bb: bt, else_bb: bf };
        f.block_mut(bt).instrs.push(Instr::Bin { dst: t, op: BinOp::Add, a: Temp(0), b: Temp(1) });
        f.block_mut(bt).term = Terminator::Jump(join);
        f.block_mut(bf).instrs.push(Instr::Bin { dst: t, op: BinOp::Add, a: Temp(0), b: Temp(1) });
        f.block_mut(bf).term = Terminator::Jump(join);
        f.block_mut(join).term = Terminator::Ret(None);
        let n_before = f.instr_count();
        let a = analyze_and_resolve(&mut f);
        assert!(matches!(a.deriv(t), Some(DerivKind::Simple(_))));
        assert_eq!(f.instr_count(), n_before, "no path-variable assignments inserted");
    }

    /// An init-to-zero def plus a deriving def: variant 0 is the empty base
    /// list (strength-reduction init pattern).
    #[test]
    fn int_init_plus_derivation_is_ambiguous_with_empty_variant() {
        let mut b = FuncBuilder::new("t", &[TempKind::Ptr]);
        let t = b.constant(0);
        let t2 = b.bin(BinOp::Add, Temp(0), t);
        // redefine t with pointer arithmetic
        b.push(Instr::Bin { dst: t, op: BinOp::Add, a: Temp(0), b: t2 });
        b.ret(None);
        let mut f = b.finish();
        let a = analyze_and_resolve(&mut f);
        let Some(DerivKind::Ambiguous { variants, .. }) = a.deriv(t) else {
            panic!("expected ambiguous");
        };
        assert_eq!(variants[0], vec![]);
        assert_eq!(variants.len(), 2);
    }

    /// Declared pointers are never derived.
    #[test]
    fn tidy_pointers_not_derived() {
        let mut b = FuncBuilder::new("t", &[TempKind::Ptr]);
        let p = b.copy_of(Temp(0), TempKind::Ptr);
        b.ret(Some(p));
        let mut f = b.finish();
        let a = analyze_and_resolve(&mut f);
        assert!(!a.is_derived(p));
        assert!(a.is_ptr_like(&f, p));
    }
}
