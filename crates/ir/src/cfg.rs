//! Control-flow graph utilities: predecessors, reverse postorder,
//! dominators and natural loops.

use crate::func::Function;
use crate::ids::BlockId;

/// Predecessor lists for every block.
#[must_use]
pub fn predecessors(f: &Function) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); f.blocks.len()];
    for b in f.block_ids() {
        for s in f.block(b).term.successors() {
            preds[s.index()].push(b);
        }
    }
    preds
}

/// Reverse postorder over blocks reachable from entry.
#[must_use]
pub fn reverse_postorder(f: &Function) -> Vec<BlockId> {
    let n = f.blocks.len();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with an explicit stack of (block, next-successor-index).
    // Successors are visited in reverse so that a branch's *first*
    // successor (the then-side: loop bodies) ends up earliest in the RPO —
    // this keeps loop bodies adjacent to their headers in layout order,
    // which both the emitter (fallthrough) and the register allocator
    // (interval spans) rely on.
    let mut stack = vec![(f.entry, 0usize)];
    visited[f.entry.index()] = true;
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let mut succs = f.block(b).term.successors();
        succs.reverse();
        if *i < succs.len() {
            let s = succs[*i];
            *i += 1;
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Immediate dominators, computed with the Cooper–Harvey–Kennedy iterative
/// algorithm. Unreachable blocks get `None`; the entry dominates itself.
#[must_use]
pub fn dominators(f: &Function) -> Vec<Option<BlockId>> {
    let rpo = reverse_postorder(f);
    let mut rpo_index = vec![usize::MAX; f.blocks.len()];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_index[b.index()] = i;
    }
    let preds = predecessors(f);
    let mut idom: Vec<Option<BlockId>> = vec![None; f.blocks.len()];
    idom[f.entry.index()] = Some(f.entry);
    let intersect = |idom: &[Option<BlockId>], a: BlockId, b: BlockId| -> BlockId {
        let (mut x, mut y) = (a, b);
        while x != y {
            while rpo_index[x.index()] > rpo_index[y.index()] {
                x = idom[x.index()].expect("processed block has idom");
            }
            while rpo_index[y.index()] > rpo_index[x.index()] {
                y = idom[y.index()].expect("processed block has idom");
            }
        }
        x
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &rpo {
            if b == f.entry {
                continue;
            }
            let mut new_idom: Option<BlockId> = None;
            for &p in &preds[b.index()] {
                if idom[p.index()].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, cur, p),
                });
            }
            if new_idom.is_some() && idom[b.index()] != new_idom {
                idom[b.index()] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

/// True if `a` dominates `b` under `idom`.
#[must_use]
pub fn dominates(idom: &[Option<BlockId>], a: BlockId, b: BlockId) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        match idom[cur.index()] {
            Some(d) if d != cur => cur = d,
            _ => return false,
        }
    }
}

/// A natural loop: its header and member blocks (header included).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (target of the back edge).
    pub header: BlockId,
    /// The source of the back edge (the latch).
    pub latch: BlockId,
    /// All blocks in the loop, header first.
    pub body: Vec<BlockId>,
}

impl NaturalLoop {
    /// Membership test.
    #[must_use]
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }
}

/// Finds all natural loops (one per back edge `latch → header` where the
/// header dominates the latch).
#[must_use]
pub fn natural_loops(f: &Function) -> Vec<NaturalLoop> {
    let idom = dominators(f);
    let preds = predecessors(f);
    let mut loops = Vec::new();
    for latch in f.block_ids() {
        // Skip unreachable blocks.
        if idom[latch.index()].is_none() && latch != f.entry {
            continue;
        }
        for header in f.block(latch).term.successors() {
            if !dominates(&idom, header, latch) {
                continue;
            }
            // Collect the loop body: header plus everything that reaches
            // the latch without passing through the header.
            let mut body = vec![header];
            let mut stack = vec![latch];
            while let Some(b) = stack.pop() {
                if body.contains(&b) {
                    continue;
                }
                body.push(b);
                for &p in &preds[b.index()] {
                    stack.push(p);
                }
            }
            loops.push(NaturalLoop { header, latch, body });
        }
    }
    loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{Function, TempKind};
    use crate::ids::FuncId;
    use crate::instr::Terminator;

    /// entry → cond; cond → (body | exit); body → cond (a while loop).
    fn while_loop() -> Function {
        let mut f = Function::new("w", FuncId(0), &[], None);
        let cond = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        let c = f.new_temp(TempKind::Int);
        f.block_mut(f.entry).term = Terminator::Jump(cond);
        f.block_mut(cond).term = Terminator::Br { cond: c, then_bb: body, else_bb: exit };
        f.block_mut(body).term = Terminator::Jump(cond);
        f.block_mut(exit).term = Terminator::Ret(None);
        f
    }

    #[test]
    fn rpo_starts_at_entry() {
        let f = while_loop();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo[0], f.entry);
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn predecessors_of_loop_header() {
        let f = while_loop();
        let preds = predecessors(&f);
        // cond (block 1) has entry and body as predecessors.
        assert_eq!(preds[1].len(), 2);
    }

    #[test]
    fn dominator_tree() {
        let f = while_loop();
        let idom = dominators(&f);
        assert_eq!(idom[0], Some(BlockId(0)));
        assert_eq!(idom[1], Some(BlockId(0)));
        assert_eq!(idom[2], Some(BlockId(1)));
        assert_eq!(idom[3], Some(BlockId(1)));
        assert!(dominates(&idom, BlockId(0), BlockId(3)));
        assert!(dominates(&idom, BlockId(1), BlockId(2)));
        assert!(!dominates(&idom, BlockId(2), BlockId(3)));
    }

    #[test]
    fn finds_the_while_loop() {
        let f = while_loop();
        let loops = natural_loops(&f);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latch, BlockId(2));
        assert!(l.contains(BlockId(1)) && l.contains(BlockId(2)));
        assert!(!l.contains(BlockId(0)) && !l.contains(BlockId(3)));
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut f = Function::new("s", FuncId(0), &[], None);
        let b = f.new_block();
        f.block_mut(f.entry).term = Terminator::Jump(b);
        f.block_mut(b).term = Terminator::Ret(None);
        assert!(natural_loops(&f).is_empty());
    }

    #[test]
    fn unreachable_blocks_are_ignored() {
        let mut f = while_loop();
        let dead = f.new_block();
        f.block_mut(dead).term = Terminator::Jump(dead);
        let rpo = reverse_postorder(&f);
        assert!(!rpo.contains(&dead));
        // The self-loop on an unreachable block must not be reported.
        assert_eq!(natural_loops(&f).len(), 1);
    }
}
