//! Ergonomic construction of IR functions, used by the front end's lowering
//! and by tests.

use m3gc_core::heap::TypeId;

use crate::func::{Function, SlotInfo, TempKind};
use crate::ids::{BlockId, FuncId, GlobalId, SlotId, Temp};
use crate::instr::{BinOp, Instr, RuntimeFn, Terminator, UnOp};

/// A cursor-style builder over a [`Function`].
#[derive(Debug)]
pub struct FuncBuilder {
    func: Function,
    current: BlockId,
    /// True once the current block's terminator has been set explicitly.
    terminated: bool,
}

impl FuncBuilder {
    /// Starts building a function with the given parameter kinds.
    #[must_use]
    pub fn new(name: &str, params: &[TempKind]) -> FuncBuilder {
        Self::with_ret(name, params, None)
    }

    /// Starts building a function that returns a value of `ret` kind.
    #[must_use]
    pub fn with_ret(name: &str, params: &[TempKind], ret: Option<TempKind>) -> FuncBuilder {
        let func = Function::new(name, FuncId(0), params, ret);
        let current = func.entry;
        FuncBuilder { func, current, terminated: false }
    }

    /// The parameter temp at `i`.
    #[must_use]
    pub fn param(&self, i: usize) -> Temp {
        assert!(i < self.func.n_params, "parameter index out of range");
        Temp(i as u32)
    }

    /// Allocates a fresh temp.
    pub fn temp(&mut self, kind: TempKind) -> Temp {
        self.func.new_temp(kind)
    }

    /// Allocates a frame slot.
    pub fn slot(&mut self, info: SlotInfo) -> SlotId {
        self.func.new_slot(info)
    }

    /// Creates a new (empty) block without switching to it.
    pub fn block(&mut self) -> BlockId {
        self.func.new_block()
    }

    /// Makes `b` the insertion point.
    pub fn switch_to(&mut self, b: BlockId) {
        self.current = b;
        self.terminated = false;
    }

    /// The current insertion block.
    #[must_use]
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, ins: Instr) {
        assert!(!self.terminated, "appending to a terminated block");
        self.func.block_mut(self.current).instrs.push(ins);
    }

    /// `dst := value`, fresh Int temp.
    pub fn constant(&mut self, value: i64) -> Temp {
        let dst = self.temp(TempKind::Int);
        self.push(Instr::Const { dst, value });
        dst
    }

    /// NIL constant (pointer kind).
    pub fn nil(&mut self) -> Temp {
        let dst = self.temp(TempKind::Ptr);
        self.push(Instr::Const { dst, value: 0 });
        dst
    }

    /// `dst := a op b`, fresh Int temp.
    pub fn bin(&mut self, op: BinOp, a: Temp, b: Temp) -> Temp {
        let dst = self.temp(TempKind::Int);
        self.push(Instr::Bin { dst, op, a, b });
        dst
    }

    /// `dst := op a`, fresh Int temp.
    pub fn un(&mut self, op: UnOp, a: Temp) -> Temp {
        let dst = self.temp(TempKind::Int);
        self.push(Instr::Un { dst, op, a });
        dst
    }

    /// Copies `src` into a fresh temp of kind `kind`.
    pub fn copy_of(&mut self, src: Temp, kind: TempKind) -> Temp {
        let dst = self.temp(kind);
        self.push(Instr::Copy { dst, src });
        dst
    }

    /// `dst := mem[addr + offset]`, result kind chosen by caller.
    pub fn load(&mut self, addr: Temp, offset: i32, kind: TempKind) -> Temp {
        let dst = self.temp(kind);
        self.push(Instr::Load { dst, addr, offset });
        dst
    }

    /// `mem[addr + offset] := src`.
    pub fn store(&mut self, addr: Temp, offset: i32, src: Temp) {
        self.push(Instr::Store { addr, offset, src });
    }

    /// Reads a frame slot word.
    pub fn load_slot(&mut self, slot: SlotId, offset: u32, kind: TempKind) -> Temp {
        let dst = self.temp(kind);
        self.push(Instr::LoadSlot { dst, slot, offset });
        dst
    }

    /// Writes a frame slot word.
    pub fn store_slot(&mut self, slot: SlotId, offset: u32, src: Temp) {
        self.push(Instr::StoreSlot { slot, offset, src });
    }

    /// Takes a frame slot's address.
    pub fn slot_addr(&mut self, slot: SlotId) -> Temp {
        let dst = self.temp(TempKind::Int);
        self.push(Instr::SlotAddr { dst, slot });
        dst
    }

    /// Reads a global.
    pub fn load_global(&mut self, global: GlobalId, kind: TempKind) -> Temp {
        let dst = self.temp(kind);
        self.push(Instr::LoadGlobal { dst, global });
        dst
    }

    /// Writes a global.
    pub fn store_global(&mut self, global: GlobalId, src: Temp) {
        self.push(Instr::StoreGlobal { global, src });
    }

    /// Calls `func`, returning a fresh temp of `ret` kind if given.
    pub fn call(&mut self, func: FuncId, args: Vec<Temp>, ret: Option<TempKind>) -> Option<Temp> {
        let dst = ret.map(|k| self.temp(k));
        self.push(Instr::Call { dst, func, args });
        dst
    }

    /// Calls a runtime service.
    pub fn call_runtime(&mut self, func: RuntimeFn, args: Vec<Temp>) {
        self.push(Instr::CallRuntime { dst: None, func, args });
    }

    /// Allocates a heap object, returning the pointer temp.
    pub fn new_object(&mut self, ty: TypeId, len: Option<Temp>) -> Temp {
        let dst = self.temp(TempKind::Ptr);
        self.push(Instr::New { dst, ty, len });
        dst
    }

    /// Terminates the current block with a jump.
    pub fn jump(&mut self, to: BlockId) {
        self.set_term(Terminator::Jump(to));
    }

    /// Terminates the current block with a conditional branch.
    pub fn br(&mut self, cond: Temp, then_bb: BlockId, else_bb: BlockId) {
        self.set_term(Terminator::Br { cond, then_bb, else_bb });
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<Temp>) {
        self.set_term(Terminator::Ret(value));
    }

    fn set_term(&mut self, t: Terminator) {
        assert!(!self.terminated, "block already terminated");
        self.func.block_mut(self.current).term = t;
        self.terminated = true;
    }

    /// True if the current block has been explicitly terminated.
    #[must_use]
    pub fn is_terminated(&self) -> bool {
        self.terminated
    }

    /// Finishes and returns the function.
    #[must_use]
    pub fn finish(self) -> Function {
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_diamond() {
        let mut b =
            FuncBuilder::with_ret("max", &[TempKind::Int, TempKind::Int], Some(TempKind::Int));
        let (x, y) = (b.param(0), b.param(1));
        let c = b.bin(BinOp::Lt, x, y);
        let bt = b.block();
        let bf = b.block();
        b.br(c, bt, bf);
        b.switch_to(bt);
        b.ret(Some(y));
        b.switch_to(bf);
        b.ret(Some(x));
        let f = b.finish();
        assert_eq!(f.blocks.len(), 3);
        assert_eq!(f.instr_count(), 1);
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_termination_panics() {
        let mut b = FuncBuilder::new("f", &[]);
        b.ret(None);
        b.ret(None);
    }

    #[test]
    #[should_panic(expected = "terminated block")]
    fn append_after_terminator_panics() {
        let mut b = FuncBuilder::new("f", &[]);
        b.ret(None);
        b.constant(1);
    }

    #[test]
    fn helpers_allocate_expected_kinds() {
        let mut b = FuncBuilder::new("f", &[TempKind::Ptr]);
        let c = b.constant(3);
        let p = b.nil();
        let f = b.finish();
        assert_eq!(f.kind(c), TempKind::Int);
        assert_eq!(f.kind(p), TempKind::Ptr);
    }
}
