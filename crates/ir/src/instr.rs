//! IR instructions and block terminators.

use m3gc_core::heap::TypeId;

use crate::ids::{BlockId, FuncId, GlobalId, SlotId, Temp};

/// Binary operators. Comparisons yield 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition. On pointer-like operands, creates a derived value.
    Add,
    /// Wrapping subtraction. Pointer−pointer yields a (derived) non-pointer.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Truncating division.
    Div,
    /// Remainder (sign follows the dividend, as in Rust).
    Mod,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Equality comparison.
    Eq,
    /// Inequality comparison.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl BinOp {
    /// True for the comparison operators (result is 0/1, never a pointer).
    #[must_use]
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }

    /// Evaluates the operator on two integers (reference semantics, shared
    /// by the IR interpreter and the VM).
    #[must_use]
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinOp::Mod => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Eq => i64::from(a == b),
            BinOp::Ne => i64::from(a != b),
            BinOp::Lt => i64::from(a < b),
            BinOp::Le => i64::from(a <= b),
            BinOp::Gt => i64::from(a > b),
            BinOp::Ge => i64::from(a >= b),
        }
    }

    /// True if the operator is commutative.
    #[must_use]
    pub fn commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Eq | BinOp::Ne
        )
    }
}

impl std::fmt::Display for BinOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "div",
            BinOp::Mod => "mod",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (on 0/1).
    Not,
}

impl UnOp {
    /// Evaluates the operator.
    #[must_use]
    pub fn eval(self, a: i64) -> i64 {
        match self {
            UnOp::Neg => a.wrapping_neg(),
            UnOp::Not => i64::from(a == 0),
        }
    }
}

impl std::fmt::Display for UnOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnOp::Neg => write!(f, "neg"),
            UnOp::Not => write!(f, "not"),
        }
    }
}

/// Non-allocating runtime services. Calls to these are **not** gc-points:
/// the paper statically exempts known non-allocating procedures (run-time
/// error reporting and the like) from gc-point status (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuntimeFn {
    /// Print an integer (no newline).
    PrintInt,
    /// Print a character given its code.
    PrintChar,
    /// Print a newline.
    PrintLn,
    /// Abort with a subscript-range error.
    RangeError,
    /// Abort with a NIL-dereference error.
    NilError,
    /// Abort with an assertion failure.
    AssertError,
}

impl RuntimeFn {
    /// All runtime functions.
    pub const ALL: [RuntimeFn; 6] = [
        RuntimeFn::PrintInt,
        RuntimeFn::PrintChar,
        RuntimeFn::PrintLn,
        RuntimeFn::RangeError,
        RuntimeFn::NilError,
        RuntimeFn::AssertError,
    ];

    /// Stable numeric code used by the VM's `SYS` instruction.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            RuntimeFn::PrintInt => 0,
            RuntimeFn::PrintChar => 1,
            RuntimeFn::PrintLn => 2,
            RuntimeFn::RangeError => 3,
            RuntimeFn::NilError => 4,
            RuntimeFn::AssertError => 5,
        }
    }

    /// Inverse of [`RuntimeFn::code`].
    #[must_use]
    pub fn from_code(code: u8) -> Option<RuntimeFn> {
        RuntimeFn::ALL.get(code as usize).copied()
    }

    /// Number of arguments the service takes.
    #[must_use]
    pub fn arity(self) -> usize {
        match self {
            RuntimeFn::PrintInt | RuntimeFn::PrintChar => 1,
            _ => 0,
        }
    }

    /// True if the service aborts the program.
    #[must_use]
    pub fn is_fatal(self) -> bool {
        matches!(self, RuntimeFn::RangeError | RuntimeFn::NilError | RuntimeFn::AssertError)
    }
}

impl std::fmt::Display for RuntimeFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RuntimeFn::PrintInt => "print_int",
            RuntimeFn::PrintChar => "print_char",
            RuntimeFn::PrintLn => "print_ln",
            RuntimeFn::RangeError => "range_error",
            RuntimeFn::NilError => "nil_error",
            RuntimeFn::AssertError => "assert_error",
        };
        write!(f, "{s}")
    }
}

/// A non-terminator instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// `dst := value`.
    Const { dst: Temp, value: i64 },
    /// `dst := src`.
    Copy { dst: Temp, src: Temp },
    /// `dst := a op b`.
    Bin { dst: Temp, op: BinOp, a: Temp, b: Temp },
    /// `dst := op a`.
    Un { dst: Temp, op: UnOp, a: Temp },
    /// `dst := mem[addr + offset]` (offset in words).
    Load { dst: Temp, addr: Temp, offset: i32 },
    /// `mem[addr + offset] := src`.
    Store { addr: Temp, offset: i32, src: Temp },
    /// `dst := slot[offset]` — read from a frame memory slot.
    LoadSlot { dst: Temp, slot: SlotId, offset: u32 },
    /// `slot[offset] := src`.
    StoreSlot { slot: SlotId, offset: u32, src: Temp },
    /// `dst := &slot` — address of a frame slot (for VAR/WITH on locals).
    SlotAddr { dst: Temp, slot: SlotId },
    /// `dst := global`.
    LoadGlobal { dst: Temp, global: GlobalId },
    /// `global := src`.
    StoreGlobal { global: GlobalId, src: Temp },
    /// `dst := &global` — address of a global (for VAR on globals).
    GlobalAddr { dst: Temp, global: GlobalId },
    /// Direct call. A gc-point when the callee (transitively) allocates.
    Call { dst: Option<Temp>, func: FuncId, args: Vec<Temp> },
    /// Call to a non-allocating runtime service. Never a gc-point.
    CallRuntime { dst: Option<Temp>, func: RuntimeFn, args: Vec<Temp> },
    /// Heap allocation: `dst := new ty[len]`. Always a gc-point.
    New { dst: Temp, ty: TypeId, len: Option<Temp> },
    /// Explicit gc-point (inserted in loops without a guaranteed one, §5.3).
    GcPoint,
}

impl Instr {
    /// The temp this instruction defines, if any.
    #[must_use]
    pub fn def(&self) -> Option<Temp> {
        match self {
            Instr::Const { dst, .. }
            | Instr::Copy { dst, .. }
            | Instr::Bin { dst, .. }
            | Instr::Un { dst, .. }
            | Instr::Load { dst, .. }
            | Instr::LoadSlot { dst, .. }
            | Instr::SlotAddr { dst, .. }
            | Instr::LoadGlobal { dst, .. }
            | Instr::GlobalAddr { dst, .. }
            | Instr::New { dst, .. } => Some(*dst),
            Instr::Call { dst, .. } | Instr::CallRuntime { dst, .. } => *dst,
            Instr::Store { .. }
            | Instr::StoreSlot { .. }
            | Instr::StoreGlobal { .. }
            | Instr::GcPoint => None,
        }
    }

    /// Appends the temps this instruction uses to `out`.
    pub fn uses(&self, out: &mut Vec<Temp>) {
        match self {
            Instr::Const { .. }
            | Instr::SlotAddr { .. }
            | Instr::LoadGlobal { .. }
            | Instr::GlobalAddr { .. }
            | Instr::LoadSlot { .. }
            | Instr::GcPoint => {}
            Instr::Copy { src, .. } => out.push(*src),
            Instr::Bin { a, b, .. } => {
                out.push(*a);
                out.push(*b);
            }
            Instr::Un { a, .. } => out.push(*a),
            Instr::Load { addr, .. } => out.push(*addr),
            Instr::Store { addr, src, .. } => {
                out.push(*addr);
                out.push(*src);
            }
            Instr::StoreSlot { src, .. } | Instr::StoreGlobal { src, .. } => out.push(*src),
            Instr::Call { args, .. } | Instr::CallRuntime { args, .. } => {
                out.extend(args.iter().copied())
            }
            Instr::New { len, .. } => out.extend(len.iter().copied()),
        }
    }

    /// True if this instruction can observe or modify memory / perform I/O
    /// and therefore must not be removed even if its result is dead.
    #[must_use]
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            Instr::Store { .. }
                | Instr::StoreSlot { .. }
                | Instr::StoreGlobal { .. }
                | Instr::Call { .. }
                | Instr::CallRuntime { .. }
                | Instr::New { .. }
                | Instr::GcPoint
        )
    }

    /// Rewrites every used temp through `f` (definitions are untouched).
    pub fn map_uses(&mut self, mut f: impl FnMut(Temp) -> Temp) {
        match self {
            Instr::Const { .. }
            | Instr::SlotAddr { .. }
            | Instr::LoadGlobal { .. }
            | Instr::GlobalAddr { .. }
            | Instr::LoadSlot { .. }
            | Instr::GcPoint => {}
            Instr::Copy { src, .. } => *src = f(*src),
            Instr::Bin { a, b, .. } => {
                *a = f(*a);
                *b = f(*b);
            }
            Instr::Un { a, .. } => *a = f(*a),
            Instr::Load { addr, .. } => *addr = f(*addr),
            Instr::Store { addr, src, .. } => {
                *addr = f(*addr);
                *src = f(*src);
            }
            Instr::StoreSlot { src, .. } | Instr::StoreGlobal { src, .. } => *src = f(*src),
            Instr::Call { args, .. } | Instr::CallRuntime { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
            Instr::New { len, .. } => {
                if let Some(l) = len {
                    *l = f(*l);
                }
            }
        }
    }
}

/// A block terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Conditional branch on a 0/1 temp.
    Br { cond: Temp, then_bb: BlockId, else_bb: BlockId },
    /// Return, with optional value.
    Ret(Option<Temp>),
}

impl Terminator {
    /// Successor blocks.
    #[must_use]
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Br { then_bb, else_bb, .. } => vec![*then_bb, *else_bb],
            Terminator::Ret(_) => vec![],
        }
    }

    /// Appends used temps to `out`.
    pub fn uses(&self, out: &mut Vec<Temp>) {
        match self {
            Terminator::Br { cond, .. } => out.push(*cond),
            Terminator::Ret(Some(t)) => out.push(*t),
            _ => {}
        }
    }

    /// Rewrites every used temp through `f`.
    pub fn map_uses(&mut self, mut f: impl FnMut(Temp) -> Temp) {
        match self {
            Terminator::Br { cond, .. } => *cond = f(*cond),
            Terminator::Ret(Some(t)) => *t = f(*t),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval() {
        assert_eq!(BinOp::Add.eval(2, 3), 5);
        assert_eq!(BinOp::Sub.eval(2, 3), -1);
        assert_eq!(BinOp::Div.eval(7, 2), 3);
        assert_eq!(BinOp::Div.eval(7, 0), 0);
        assert_eq!(BinOp::Mod.eval(7, 0), 0);
        assert_eq!(BinOp::Lt.eval(1, 2), 1);
        assert_eq!(BinOp::Ge.eval(1, 2), 0);
        assert_eq!(BinOp::Add.eval(i64::MAX, 1), i64::MIN);
    }

    #[test]
    fn unop_eval() {
        assert_eq!(UnOp::Neg.eval(5), -5);
        assert_eq!(UnOp::Not.eval(0), 1);
        assert_eq!(UnOp::Not.eval(7), 0);
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::Add.commutative());
        assert!(!BinOp::Sub.commutative());
    }

    #[test]
    fn runtime_fn_codes_roundtrip() {
        for f in RuntimeFn::ALL {
            assert_eq!(RuntimeFn::from_code(f.code()), Some(f));
        }
        assert_eq!(RuntimeFn::from_code(99), None);
    }

    #[test]
    fn def_use_extraction() {
        let i = Instr::Bin { dst: Temp(0), op: BinOp::Add, a: Temp(1), b: Temp(2) };
        assert_eq!(i.def(), Some(Temp(0)));
        let mut uses = Vec::new();
        i.uses(&mut uses);
        assert_eq!(uses, vec![Temp(1), Temp(2)]);
    }

    #[test]
    fn store_has_no_def_but_uses_both() {
        let i = Instr::Store { addr: Temp(3), offset: 1, src: Temp(4) };
        assert_eq!(i.def(), None);
        assert!(i.has_side_effects());
        let mut uses = Vec::new();
        i.uses(&mut uses);
        assert_eq!(uses, vec![Temp(3), Temp(4)]);
    }

    #[test]
    fn map_uses_rewrites() {
        let mut i = Instr::Bin { dst: Temp(0), op: BinOp::Add, a: Temp(1), b: Temp(2) };
        i.map_uses(|t| Temp(t.0 + 10));
        assert_eq!(i, Instr::Bin { dst: Temp(0), op: BinOp::Add, a: Temp(11), b: Temp(12) });
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Jump(BlockId(2)).successors(), vec![BlockId(2)]);
        assert_eq!(Terminator::Ret(None).successors(), vec![]);
        let br = Terminator::Br { cond: Temp(0), then_bb: BlockId(1), else_bb: BlockId(2) };
        assert_eq!(br.successors(), vec![BlockId(1), BlockId(2)]);
    }
}
