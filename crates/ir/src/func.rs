//! Functions, blocks and whole programs.

use m3gc_core::heap::TypeTable;

use crate::ids::{BlockId, FuncId, GlobalId, SlotId, Temp};
use crate::instr::{Instr, Terminator};

/// The statically declared kind of a temp or memory word.
///
/// In a statically typed language the compiler knows which locations
/// contain pointers (§1); `Ptr` marks *tidy* pointers (pointing at an
/// object header or NIL). Values created by pointer arithmetic are *not*
/// declared `Ptr` — they are discovered as derived values by
/// [`crate::deriv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TempKind {
    /// A non-pointer word (integers, booleans, stack addresses, path
    /// variables, derived values).
    Int,
    /// A tidy heap pointer (or NIL).
    Ptr,
}

/// A frame memory slot: a local that must live in memory rather than a
/// register, because its address is taken (VAR argument, WITH alias) or it
/// is a local fixed array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotInfo {
    /// Source name, for diagnostics.
    pub name: String,
    /// Slot size in words (1 for scalars, n for local arrays).
    pub words: u32,
    /// Offsets within the slot that hold tidy pointers. Each pointer in a
    /// local array is treated as a separate variable in the ground table,
    /// exactly as the paper's implementation does (§5.2).
    pub ptr_words: Vec<u32>,
    /// True if the slot's address is taken somewhere in the function.
    pub addressable: bool,
}

impl SlotInfo {
    /// A one-word scalar slot.
    #[must_use]
    pub fn scalar(name: impl Into<String>, kind: TempKind, addressable: bool) -> SlotInfo {
        let ptr_words = if kind == TempKind::Ptr { vec![0] } else { vec![] };
        SlotInfo { name: name.into(), words: 1, ptr_words, addressable }
    }
}

/// A module-level variable: `words` contiguous words in the global area.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalInfo {
    /// Source name.
    pub name: String,
    /// Size in words (1 for scalars, n for global fixed arrays).
    pub words: u32,
    /// Offsets within the global that hold tidy pointers (gc roots).
    pub ptr_words: Vec<u32>,
}

impl GlobalInfo {
    /// A one-word scalar global.
    #[must_use]
    pub fn scalar(name: impl Into<String>, kind: TempKind) -> GlobalInfo {
        let ptr_words = if kind == TempKind::Ptr { vec![0] } else { vec![] };
        GlobalInfo { name: name.into(), words: 1, ptr_words }
    }
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The block's instructions, in order.
    pub instrs: Vec<Instr>,
    /// Control transfer out of the block.
    pub term: Terminator,
}

impl Block {
    /// An empty block ending in `term`.
    #[must_use]
    pub fn new(term: Terminator) -> Block {
        Block { instrs: Vec::new(), term }
    }
}

/// One function in three-address form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Source name.
    pub name: String,
    /// This function's id within its program.
    pub id: FuncId,
    /// Number of parameters; parameters are temps `0..n_params` at entry.
    pub n_params: usize,
    /// Basic blocks; `BlockId` indexes this vector.
    pub blocks: Vec<Block>,
    /// The entry block.
    pub entry: BlockId,
    /// Declared kind of each temp; `Temp` indexes this vector.
    pub temp_kinds: Vec<TempKind>,
    /// Frame memory slots.
    pub slots: Vec<SlotInfo>,
    /// Kind of the returned value, if the function returns one.
    pub ret_kind: Option<TempKind>,
    /// For each parameter, true if it is a by-reference (VAR) parameter —
    /// i.e. it holds the *address* of the actual, possibly an interior
    /// pointer. By-ref parameters are pinned to their incoming argument
    /// slot so the collector's update of that slot is always seen.
    pub byref_params: Vec<bool>,
}

impl Function {
    /// Creates an empty function with the given parameter kinds.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        id: FuncId,
        params: &[TempKind],
        ret_kind: Option<TempKind>,
    ) -> Function {
        Function {
            name: name.into(),
            id,
            n_params: params.len(),
            blocks: vec![Block::new(Terminator::Ret(None))],
            entry: BlockId(0),
            temp_kinds: params.to_vec(),
            slots: Vec::new(),
            ret_kind,
            byref_params: vec![false; params.len()],
        }
    }

    /// Marks parameter `i` as a by-reference (VAR) parameter.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_byref_param(&mut self, i: usize) {
        assert!(i < self.n_params, "parameter index out of range");
        self.byref_params[i] = true;
    }

    /// Is parameter temp `t` a by-reference parameter?
    #[must_use]
    pub fn is_byref_param(&self, t: Temp) -> bool {
        self.byref_params.get(t.index()).copied().unwrap_or(false)
    }

    /// Allocates a fresh temp of the given kind.
    pub fn new_temp(&mut self, kind: TempKind) -> Temp {
        let t = Temp(self.temp_kinds.len() as u32);
        self.temp_kinds.push(kind);
        t
    }

    /// Allocates a fresh block, returning its id.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::new(Terminator::Ret(None)));
        id
    }

    /// Allocates a frame slot.
    pub fn new_slot(&mut self, info: SlotInfo) -> SlotId {
        let id = SlotId(self.slots.len() as u32);
        self.slots.push(info);
        id
    }

    /// Number of temps.
    #[must_use]
    pub fn temp_count(&self) -> usize {
        self.temp_kinds.len()
    }

    /// The declared kind of `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn kind(&self, t: Temp) -> TempKind {
        self.temp_kinds[t.index()]
    }

    /// Shorthand: is `t` a declared tidy pointer?
    #[must_use]
    pub fn is_ptr(&self, t: Temp) -> bool {
        self.kind(t) == TempKind::Ptr
    }

    /// Immutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[must_use]
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.index()]
    }

    /// Iterates over all block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Total instruction count (excluding terminators).
    #[must_use]
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }
}

/// A whole program: functions, globals, heap types, entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// All functions; `FuncId` indexes this vector.
    pub funcs: Vec<Function>,
    /// All globals; `GlobalId` indexes this vector.
    pub globals: Vec<GlobalInfo>,
    /// Heap type descriptors.
    pub types: TypeTable,
    /// The module body (entry point).
    pub main: FuncId,
}

impl Program {
    /// Creates an empty program whose `main` is function 0 (which must be
    /// added before use).
    #[must_use]
    pub fn new() -> Program {
        Program {
            funcs: Vec::new(),
            globals: Vec::new(),
            types: TypeTable::default(),
            main: FuncId(0),
        }
    }

    /// Adds a function, returning its id. The function's `id` field is
    /// fixed up to match.
    pub fn add_func(&mut self, mut f: Function) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        f.id = id;
        self.funcs.push(f);
        id
    }

    /// Adds a global, returning its id.
    pub fn add_global(&mut self, g: GlobalInfo) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(g);
        id
    }

    /// Immutable access to a function.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    #[must_use]
    pub fn func(&self, f: FuncId) -> &Function {
        &self.funcs[f.index()]
    }

    /// Computes, for each function, whether it may (transitively) allocate.
    ///
    /// The paper considers all calls gc-points except calls to procedures
    /// statically known not to allocate (§5.3); this is the interprocedural
    /// refinement it mentions as an option. The result is a fixpoint over
    /// the call graph: a function allocates if it contains `New` or calls
    /// an allocating function.
    #[must_use]
    pub fn compute_allocating(&self) -> Vec<bool> {
        let n = self.funcs.len();
        let mut allocating = vec![false; n];
        for (i, f) in self.funcs.iter().enumerate() {
            if f.blocks.iter().any(|b| b.instrs.iter().any(|ins| matches!(ins, Instr::New { .. })))
            {
                allocating[i] = true;
            }
        }
        loop {
            let mut changed = false;
            for (i, f) in self.funcs.iter().enumerate() {
                if allocating[i] {
                    continue;
                }
                let calls_allocating = f.blocks.iter().any(|b| {
                    b.instrs.iter().any(|ins| match ins {
                        Instr::Call { func, .. } => allocating[func.index()],
                        _ => false,
                    })
                });
                if calls_allocating {
                    allocating[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        allocating
    }

    /// Word offsets of all tidy-pointer roots in the global area, given the
    /// globals' packed layout (each global occupies `words` consecutive
    /// words, in id order).
    #[must_use]
    pub fn global_ptr_roots(&self) -> Vec<u32> {
        let mut roots = Vec::new();
        let mut base = 0u32;
        for g in &self.globals {
            for &p in &g.ptr_words {
                roots.push(base + p);
            }
            base += g.words;
        }
        roots
    }

    /// Word offset of a global's first word in the global area.
    #[must_use]
    pub fn global_offset(&self, id: GlobalId) -> u32 {
        self.globals[..id.index()].iter().map(|g| g.words).sum()
    }

    /// Total size of the global area in words.
    #[must_use]
    pub fn globals_words(&self) -> u32 {
        self.globals.iter().map(|g| g.words).sum()
    }
}

impl Default for Program {
    fn default() -> Self {
        Program::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::BinOp;
    use m3gc_core::heap::{HeapType, TypeId};

    #[test]
    fn function_construction() {
        let mut f =
            Function::new("f", FuncId(0), &[TempKind::Ptr, TempKind::Int], Some(TempKind::Int));
        assert_eq!(f.n_params, 2);
        assert!(f.is_ptr(Temp(0)));
        assert!(!f.is_ptr(Temp(1)));
        let t = f.new_temp(TempKind::Int);
        assert_eq!(t, Temp(2));
        let b = f.new_block();
        assert_eq!(b, BlockId(1));
        f.block_mut(b).instrs.push(Instr::Bin { dst: t, op: BinOp::Add, a: Temp(0), b: Temp(1) });
        assert_eq!(f.instr_count(), 1);
    }

    #[test]
    fn slot_helpers() {
        let s = SlotInfo::scalar("x", TempKind::Ptr, true);
        assert_eq!(s.words, 1);
        assert_eq!(s.ptr_words, vec![0]);
        let s = SlotInfo::scalar("i", TempKind::Int, false);
        assert!(s.ptr_words.is_empty());
    }

    #[test]
    fn allocating_fixpoint() {
        let mut p = Program::new();
        // f0 allocates directly; f1 calls f0; f2 calls nothing.
        let mut f0 = Function::new("alloc", FuncId(0), &[], None);
        let t = f0.new_temp(TempKind::Ptr);
        f0.blocks[0].instrs.push(Instr::New { dst: t, ty: TypeId(0), len: None });
        p.add_func(f0);
        let mut f1 = Function::new("caller", FuncId(0), &[], None);
        f1.blocks[0].instrs.push(Instr::Call { dst: None, func: FuncId(0), args: vec![] });
        p.add_func(f1);
        let f2 = Function::new("leaf", FuncId(0), &[], None);
        p.add_func(f2);
        p.types.add(HeapType::Record { name: "T".into(), words: 1, ptr_offsets: vec![] });
        assert_eq!(p.compute_allocating(), vec![true, true, false]);
    }

    #[test]
    fn global_layout() {
        let mut p = Program::new();
        p.add_global(GlobalInfo::scalar("a", TempKind::Int));
        p.add_global(GlobalInfo { name: "arr".into(), words: 3, ptr_words: vec![0, 2] });
        p.add_global(GlobalInfo::scalar("p", TempKind::Ptr));
        assert_eq!(p.global_offset(GlobalId(0)), 0);
        assert_eq!(p.global_offset(GlobalId(1)), 1);
        assert_eq!(p.global_offset(GlobalId(2)), 4);
        assert_eq!(p.globals_words(), 5);
        assert_eq!(p.global_ptr_roots(), vec![1, 3, 4]);
    }
}
