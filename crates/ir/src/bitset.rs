//! Dense bit sets for dataflow analyses.

/// A fixed-capacity dense bit set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set with capacity for `len` elements.
    #[must_use]
    pub fn new(len: usize) -> BitSet {
        BitSet { words: vec![0; len.div_ceil(64)], len }
    }

    /// Capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts `i`; returns true if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let new = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        new
    }

    /// Removes `i`; returns true if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Unions `other` into `self`; returns true if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a |= b;
            changed |= *a != old;
        }
        changed
    }

    /// Number of set bits.
    #[must_use]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bit is set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(100);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(99));
        assert!(!s.insert(0), "double insert reports false");
        assert!(s.contains(63) && s.contains(64));
        assert!(!s.contains(50));
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn union() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        a.insert(1);
        b.insert(2);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union is a no-op");
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn iteration_order() {
        let mut s = BitSet::new(200);
        for i in [199, 0, 64, 65, 128] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 65, 128, 199]);
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let s = BitSet::new(5);
        assert!(!s.contains(1000));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        BitSet::new(5).insert(5);
    }

    #[test]
    fn clear_and_empty() {
        let mut s = BitSet::new(70);
        s.insert(69);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
    }
}
