//! Typed index newtypes used throughout the IR.

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The underlying index.
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A virtual register.
    Temp,
    "t"
);
id_type!(
    /// A basic block within a function.
    BlockId,
    "b"
);
id_type!(
    /// A function within a program.
    FuncId,
    "f"
);
id_type!(
    /// A module-level (global) variable.
    GlobalId,
    "g"
);
id_type!(
    /// A frame memory slot (addressable local or local array).
    SlotId,
    "s"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(Temp(3).to_string(), "t3");
        assert_eq!(BlockId(0).to_string(), "b0");
        assert_eq!(FuncId(1).to_string(), "f1");
        assert_eq!(GlobalId(9).to_string(), "g9");
        assert_eq!(SlotId(2).to_string(), "s2");
        assert_eq!(SlotId(2).index(), 2);
    }
}
