//! Backward liveness over temps, with the paper's *dead base* rule (§4):
//! when derivation information is supplied, **a use of a derived value is a
//! use of each of its base values** (and of its path variable), which keeps
//! bases alive for the lifetime of values derived from them. Without the
//! rule, an optimizer may let a base die inside a loop that still uses a
//! value derived from it, leaving the collector unable to update the
//! derived value.

use crate::bitset::BitSet;
use crate::cfg;
use crate::deriv::DerivAnalysis;
use crate::func::Function;
use crate::ids::{BlockId, Temp};
use crate::instr::{Instr, Terminator};

/// Per-block liveness sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Temps live on entry to each block.
    pub live_in: Vec<BitSet>,
    /// Temps live on exit from each block.
    pub live_out: Vec<BitSet>,
}

/// Expands a plain use into the full use set: the temp itself plus, under
/// the dead-base rule, its transitive support.
fn expand_use(t: Temp, deriv: Option<&DerivAnalysis>, out: &mut Vec<Temp>) {
    out.push(t);
    if let Some(d) = deriv {
        d.expand_support(t, out);
    }
}

fn instr_uses(ins: &Instr, deriv: Option<&DerivAnalysis>, out: &mut Vec<Temp>) {
    let mut plain = Vec::new();
    ins.uses(&mut plain);
    for t in plain {
        expand_use(t, deriv, out);
    }
}

fn term_uses(term: &Terminator, deriv: Option<&DerivAnalysis>, out: &mut Vec<Temp>) {
    let mut plain = Vec::new();
    term.uses(&mut plain);
    for t in plain {
        expand_use(t, deriv, out);
    }
}

/// Computes liveness. Pass `Some(deriv)` to apply the dead-base rule; the
/// compiler always does, but `None` is useful to measure the rule's cost
/// (the §6.2 experiment compiles with gc support off).
#[must_use]
pub fn liveness(f: &Function, deriv: Option<&DerivAnalysis>) -> Liveness {
    let n_blocks = f.blocks.len();
    let n_temps = f.temp_count();
    let mut live_in = vec![BitSet::new(n_temps); n_blocks];
    let mut live_out = vec![BitSet::new(n_temps); n_blocks];
    let rpo = cfg::reverse_postorder(f);
    let mut uses_buf = Vec::new();
    let mut changed = true;
    while changed {
        changed = false;
        // Iterate blocks in post order (reverse of RPO) for fast backward
        // convergence.
        for &b in rpo.iter().rev() {
            let bi = b.index();
            // live_out = union of successors' live_in.
            let succs = f.block(b).term.successors();
            let mut out_set = BitSet::new(n_temps);
            for s in succs {
                out_set.union_with(&live_in[s.index()]);
            }
            if out_set != live_out[bi] {
                live_out[bi] = out_set.clone();
                changed = true;
            }
            // live_in = uses ∪ (live_out − defs), walked backward.
            let mut set = out_set;
            let block = f.block(b);
            uses_buf.clear();
            term_uses(&block.term, deriv, &mut uses_buf);
            for &t in &uses_buf {
                set.insert(t.index());
            }
            for ins in block.instrs.iter().rev() {
                if let Some(d) = ins.def() {
                    set.remove(d.index());
                }
                uses_buf.clear();
                instr_uses(ins, deriv, &mut uses_buf);
                for &t in &uses_buf {
                    set.insert(t.index());
                }
            }
            if set != live_in[bi] {
                live_in[bi] = set;
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

impl Liveness {
    /// The set of temps live **after** each instruction of block `b` (index
    /// `i` of the result corresponds to the program point just after
    /// `instrs[i]`). Used by the back end to compute gc-point live sets.
    #[must_use]
    pub fn live_after_each(
        &self,
        f: &Function,
        b: BlockId,
        deriv: Option<&DerivAnalysis>,
    ) -> Vec<BitSet> {
        let block = f.block(b);
        let n = block.instrs.len();
        let mut result = vec![BitSet::new(f.temp_count()); n];
        let mut set = self.live_out[b.index()].clone();
        let mut uses_buf = Vec::new();
        uses_buf.clear();
        term_uses(&block.term, deriv, &mut uses_buf);
        for &t in &uses_buf {
            set.insert(t.index());
        }
        for i in (0..n).rev() {
            result[i] = set.clone();
            let ins = &block.instrs[i];
            if let Some(d) = ins.def() {
                set.remove(d.index());
            }
            uses_buf.clear();
            instr_uses(ins, deriv, &mut uses_buf);
            for &t in &uses_buf {
                set.insert(t.index());
            }
        }
        result
    }
}

/// Backward liveness over **frame slots** (addressable locals / local
/// arrays), used to prune dead slots from gc-maps. A slot is live at a point
/// when its current contents may still be read — either directly
/// (`LoadSlot`) or through an outstanding alias created by `SlotAddr`
/// (a VAR argument or WITH binding).
///
/// Aliases are tracked by a flow-insensitive taint: `addr_of[t]` is the set
/// of slots whose address temp `t` may hold, closed over `Copy`/`Bin`/`Un`
/// (array indexing is address arithmetic). Any instruction *using* a tainted
/// temp counts as a use of the aliased slots — in particular a `Call` taking
/// a slot address keeps the slot live across the call, because the callee
/// may read it through the VAR parameter. If a slot address escapes where we
/// can no longer see its uses (stored to the heap, a global, another slot,
/// or returned), the slot is `pinned` live for the whole function.
///
/// One interprocedural assumption, guaranteed by the front end: a callee
/// never retains a byref parameter's address beyond the call (Mini-M3 has no
/// address-of type, so an address can only be *used* during the call or
/// passed down another VAR chain).
#[derive(Debug, Clone)]
pub struct SlotLiveness {
    /// Slots live on entry to each block (pinned slots included).
    pub live_in: Vec<BitSet>,
    /// Slots live on exit from each block (pinned slots included).
    pub live_out: Vec<BitSet>,
    /// Slots whose address escapes the analysis; live everywhere.
    pub pinned: BitSet,
    /// Per-temp: slots whose address the temp may hold.
    addr_of: Vec<BitSet>,
}

/// Adds the slots an instruction uses (reads or may read through an alias)
/// to `set`.
fn slot_gens(ins: &Instr, addr_of: &[BitSet], uses_buf: &mut Vec<Temp>, set: &mut BitSet) {
    match ins {
        Instr::LoadSlot { slot, .. } | Instr::SlotAddr { slot, .. } => {
            set.insert(slot.index());
        }
        _ => {}
    }
    uses_buf.clear();
    ins.uses(uses_buf);
    for t in uses_buf.iter() {
        set.union_with(&addr_of[t.index()]);
    }
}

/// Computes slot liveness for `f`.
#[must_use]
pub fn slot_liveness(f: &Function) -> SlotLiveness {
    let n_blocks = f.blocks.len();
    let n_slots = f.slots.len();
    let n_temps = f.temp_count();

    // Taint: which slots' addresses can each temp hold? Flow-insensitive
    // fixpoint over value-propagating instructions.
    let mut addr_of = vec![BitSet::new(n_slots); n_temps];
    for b in &f.blocks {
        for ins in &b.instrs {
            if let Instr::SlotAddr { dst, slot } = ins {
                addr_of[dst.index()].insert(slot.index());
            }
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for b in &f.blocks {
            for ins in &b.instrs {
                let (dst, srcs) = match ins {
                    Instr::Copy { dst, src } => (*dst, vec![*src]),
                    Instr::Bin { dst, a, b, .. } => (*dst, vec![*a, *b]),
                    Instr::Un { dst, a, .. } => (*dst, vec![*a]),
                    _ => continue,
                };
                for s in srcs {
                    if s != dst {
                        let (from, to) = (addr_of[s.index()].clone(), &mut addr_of[dst.index()]);
                        changed |= to.union_with(&from);
                    }
                }
            }
        }
    }

    // Pin slots whose address escapes: stored to memory we do not model, or
    // returned. Their contents may be read at any later point.
    let mut pinned = BitSet::new(n_slots);
    for b in &f.blocks {
        for ins in &b.instrs {
            let escaped = match ins {
                Instr::Store { src, .. }
                | Instr::StoreSlot { src, .. }
                | Instr::StoreGlobal { src, .. } => Some(*src),
                _ => None,
            };
            if let Some(t) = escaped {
                pinned.union_with(&addr_of[t.index()]);
            }
        }
        if let Terminator::Ret(Some(t)) = &b.term {
            pinned.union_with(&addr_of[t.index()]);
        }
    }

    // Backward dataflow. A single-word StoreSlot fully redefines the slot
    // (kill); a partial store into a multi-word slot kills nothing.
    let mut live_in = vec![BitSet::new(n_slots); n_blocks];
    let mut live_out = vec![BitSet::new(n_slots); n_blocks];
    let rpo = cfg::reverse_postorder(f);
    let mut uses_buf = Vec::new();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().rev() {
            let bi = b.index();
            let succs = f.block(b).term.successors();
            let mut out_set = BitSet::new(n_slots);
            for s in succs {
                out_set.union_with(&live_in[s.index()]);
            }
            if out_set != live_out[bi] {
                live_out[bi] = out_set.clone();
                changed = true;
            }
            let mut set = out_set;
            let block = f.block(b);
            uses_buf.clear();
            block.term.uses(&mut uses_buf);
            for t in uses_buf.iter() {
                set.union_with(&addr_of[t.index()]);
            }
            for ins in block.instrs.iter().rev() {
                if let Instr::StoreSlot { slot, .. } = ins {
                    if f.slots[slot.index()].words == 1 {
                        set.remove(slot.index());
                    }
                }
                slot_gens(ins, &addr_of, &mut uses_buf, &mut set);
            }
            if set != live_in[bi] {
                live_in[bi] = set;
                changed = true;
            }
        }
    }

    // Pinned slots are live everywhere.
    for bi in 0..n_blocks {
        live_in[bi].union_with(&pinned);
        live_out[bi].union_with(&pinned);
    }
    SlotLiveness { live_in, live_out, pinned, addr_of }
}

impl SlotLiveness {
    /// The set of slots live **before** each instruction of block `b` (index
    /// `i` corresponds to the point just before `instrs[i]`). Gc-maps use
    /// the *before* set: at a call gc-point the callee may still read the
    /// caller's slot through a VAR alias passed as an argument, and the
    /// `Call`'s own use of the address temp is part of the before set.
    #[must_use]
    pub fn live_before_each(&self, f: &Function, b: BlockId) -> Vec<BitSet> {
        let block = f.block(b);
        let n = block.instrs.len();
        let n_slots = f.slots.len();
        let mut result = vec![BitSet::new(n_slots); n];
        let mut set = self.live_out[b.index()].clone();
        let mut uses_buf = Vec::new();
        block.term.uses(&mut uses_buf);
        for t in uses_buf.iter() {
            set.union_with(&self.addr_of[t.index()]);
        }
        for i in (0..n).rev() {
            let ins = &block.instrs[i];
            if let Instr::StoreSlot { slot, .. } = ins {
                if f.slots[slot.index()].words == 1 {
                    set.remove(slot.index());
                }
            }
            slot_gens(ins, &self.addr_of, &mut uses_buf, &mut set);
            set.union_with(&self.pinned);
            result[i] = set.clone();
        }
        result
    }

    /// True if temp `t` may hold the address of `slot` (test hook).
    #[must_use]
    pub fn may_hold_addr(&self, t: Temp, slot: crate::ids::SlotId) -> bool {
        self.addr_of[t.index()].contains(slot.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::deriv::analyze_and_resolve;
    use crate::func::TempKind;
    use crate::instr::BinOp;

    /// Straight-line: t1 used by t2 is live between.
    #[test]
    fn straight_line_liveness() {
        let mut b = FuncBuilder::with_ret("f", &[TempKind::Int], Some(TempKind::Int));
        let t1 = b.constant(5);
        let t2 = b.bin(BinOp::Add, b.param(0), t1);
        b.ret(Some(t2));
        let f = b.finish();
        let lv = liveness(&f, None);
        // After the Const, both the param and t1 are live.
        let pts = lv.live_after_each(&f, f.entry, None);
        assert!(pts[0].contains(t1.index()));
        assert!(pts[0].contains(0));
        // After the Add, only t2 is live.
        assert!(pts[1].contains(t2.index()));
        assert!(!pts[1].contains(t1.index()));
    }

    /// The dead-base rule: without derivation info the base dies after the
    /// derivation; with it, the base stays live as long as the derived
    /// value does.
    #[test]
    fn dead_base_rule_extends_base_lifetime() {
        let mut b = FuncBuilder::new("f", &[TempKind::Ptr, TempKind::Int]);
        let p = b.param(0);
        let d = b.bin(BinOp::Add, p, b.param(1)); // derived from p
        let use1 = b.bin(BinOp::Add, d, b.param(1)); // d used later (also derived)
        b.ret(Some(use1));
        let mut f = b.finish();
        f.ret_kind = Some(TempKind::Int);
        let deriv = analyze_and_resolve(&mut f);

        let without = liveness(&f, None);
        let with = liveness(&f, Some(&deriv));
        let pts_without = without.live_after_each(&f, f.entry, None);
        let pts_with = with.live_after_each(&f, f.entry, Some(&deriv));
        // After the derivation of `use1`... p is dead without the rule once
        // d has been consumed, but the rule keeps p live because use1 is
        // (transitively) derived from it.
        let last = pts_without.len() - 1;
        assert!(!pts_without[last].contains(p.index()), "base dead without the rule");
        assert!(pts_with[last].contains(p.index()), "base kept alive by the rule");
    }

    /// Loop liveness: a temp defined before a loop and used inside is live
    /// around the back edge.
    #[test]
    fn loop_carried_liveness() {
        let mut b = FuncBuilder::new("f", &[TempKind::Int]);
        let x = b.constant(7);
        let header = b.block();
        let body = b.block();
        let exit = b.block();
        b.jump(header);
        b.switch_to(header);
        let c = b.bin(BinOp::Lt, b.param(0), x);
        b.br(c, body, exit);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let lv = liveness(&f, None);
        assert!(lv.live_in[header.index()].contains(x.index()));
        assert!(lv.live_out[body.index()].contains(x.index()));
        assert!(!lv.live_in[exit.index()].contains(x.index()));
    }

    /// A VAR-param alias: the slot's address is passed to a call, so the
    /// slot must be live *at* the call gc-point (the callee may read it
    /// through the VAR parameter) — and dead afterwards, so a later
    /// gc-point may kill it.
    #[test]
    fn var_param_alias_pins_slot_across_call() {
        use crate::func::SlotInfo;
        use crate::ids::FuncId;
        let mut b = FuncBuilder::new("f", &[TempKind::Ptr]);
        let s = b.slot(SlotInfo::scalar("v", TempKind::Ptr, true));
        b.store_slot(s, 0, b.param(0));
        let addr = b.slot_addr(s);
        b.call(FuncId(1), vec![addr], None);
        // A gc-point after the call: the slot is never read again.
        let _o = b.new_object(m3gc_core::heap::TypeId(0), None);
        b.ret(None);
        let f = b.finish();
        let sl = slot_liveness(&f);
        assert!(!sl.pinned.contains(s.index()), "call alias does not pin forever");
        let before = sl.live_before_each(&f, f.entry);
        // instrs: StoreSlot, SlotAddr, Call, New.
        assert!(before[2].contains(s.index()), "slot live at the call (VAR alias outstanding)");
        assert!(!before[3].contains(s.index()), "slot dead at the later gc-point");
    }

    /// A WITH-style local alias: loads through the slot address keep the
    /// slot live up to the last aliased read, and no further.
    #[test]
    fn with_alias_load_keeps_slot_live() {
        use crate::func::SlotInfo;
        let mut b = FuncBuilder::new("f", &[TempKind::Ptr]);
        let s = b.slot(SlotInfo::scalar("w", TempKind::Ptr, true));
        b.store_slot(s, 0, b.param(0));
        let addr = b.slot_addr(s);
        let _gc1 = b.new_object(m3gc_core::heap::TypeId(0), None);
        let v = b.load(addr, 0, TempKind::Ptr);
        let _gc2 = b.new_object(m3gc_core::heap::TypeId(0), None);
        b.ret(Some(v));
        let mut f = b.finish();
        f.ret_kind = Some(TempKind::Ptr);
        let sl = slot_liveness(&f);
        let before = sl.live_before_each(&f, f.entry);
        // instrs: StoreSlot, SlotAddr, New, Load, New.
        assert!(sl.may_hold_addr(addr, s));
        assert!(before[2].contains(s.index()), "slot live at gc-point before aliased read");
        assert!(!before[4].contains(s.index()), "slot dead at gc-point after last read");
    }

    /// Address arithmetic (array indexing) taints the derived address, and
    /// an escaping address (stored to a global) pins the slot everywhere.
    #[test]
    fn escaped_slot_address_pins_forever() {
        use crate::func::SlotInfo;
        use crate::ids::GlobalId;
        let mut b = FuncBuilder::new("f", &[TempKind::Int]);
        let s = b.slot(SlotInfo {
            name: "arr".into(),
            words: 4,
            ptr_words: vec![0, 1, 2, 3],
            addressable: true,
        });
        let base = b.slot_addr(s);
        let elem = b.bin(BinOp::Add, base, b.param(0));
        b.store_global(GlobalId(0), elem);
        let _gc = b.new_object(m3gc_core::heap::TypeId(0), None);
        b.ret(None);
        let f = b.finish();
        let sl = slot_liveness(&f);
        assert!(sl.may_hold_addr(elem, s), "taint flows through address arithmetic");
        assert!(sl.pinned.contains(s.index()), "escaped address pins the slot");
        let before = sl.live_before_each(&f, f.entry);
        assert!(before[3].contains(s.index()), "pinned slot live at every gc-point");
    }

    /// Loop back-edge: a slot read inside a loop body is live around the
    /// back edge — the fixpoint must propagate the header's live-in to the
    /// body's live-out (a single backward pass would miss it).
    #[test]
    fn slot_loop_backedge_fixpoint() {
        use crate::func::SlotInfo;
        let mut b = FuncBuilder::new("f", &[TempKind::Ptr, TempKind::Int]);
        let s = b.slot(SlotInfo::scalar("v", TempKind::Ptr, true));
        b.store_slot(s, 0, b.param(0));
        let header = b.block();
        let body = b.block();
        let exit = b.block();
        b.jump(header);
        b.switch_to(header);
        let x = b.load_slot(s, 0, TempKind::Ptr);
        let c = b.bin(BinOp::Eq, x, b.param(0));
        b.br(c, body, exit);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let sl = slot_liveness(&f);
        assert!(sl.live_in[header.index()].contains(s.index()), "slot live into loop header");
        assert!(
            sl.live_out[body.index()].contains(s.index()),
            "back-edge liveness reaches the body's exit (fixpoint, not one pass)"
        );
        assert!(!sl.live_in[exit.index()].contains(s.index()), "slot dead after the loop");
    }

    /// A full-width store kills the slot backward: a gc-point between the
    /// last read and a redefinition sees the slot dead.
    #[test]
    fn store_kills_slot_backward() {
        use crate::func::SlotInfo;
        let mut b = FuncBuilder::new("f", &[TempKind::Ptr]);
        let s = b.slot(SlotInfo::scalar("v", TempKind::Ptr, true));
        b.store_slot(s, 0, b.param(0));
        let _gc = b.new_object(m3gc_core::heap::TypeId(0), None);
        b.store_slot(s, 0, b.param(0)); // redefinition, old value never read
        let v = b.load_slot(s, 0, TempKind::Ptr);
        b.ret(Some(v));
        let mut f = b.finish();
        f.ret_kind = Some(TempKind::Ptr);
        let sl = slot_liveness(&f);
        let before = sl.live_before_each(&f, f.entry);
        // instrs: StoreSlot, New, StoreSlot, LoadSlot.
        assert!(!before[1].contains(s.index()), "old contents dead at the gc-point");
        assert!(before[3].contains(s.index()), "new contents live before the read");
    }

    /// An interior pointer derived from a heap base keeps the *base* temp
    /// live at a gc-point between derivation and use (dead-base rule) — the
    /// base must never be pruned from the map while the derived value lives.
    #[test]
    fn interior_pointer_base_live_at_gc_point() {
        let mut b = FuncBuilder::new("f", &[TempKind::Ptr, TempKind::Int]);
        let p = b.param(0);
        let d = b.bin(BinOp::Add, p, b.param(1)); // interior pointer into *p
        let _gc = b.new_object(m3gc_core::heap::TypeId(0), None);
        let v = b.bin(BinOp::Add, d, b.param(1)); // d consumed after the gc-point
        b.ret(Some(v));
        let mut f = b.finish();
        f.ret_kind = Some(TempKind::Int);
        let deriv = analyze_and_resolve(&mut f);
        let lv = liveness(&f, Some(&deriv));
        let after = lv.live_after_each(&f, f.entry, Some(&deriv));
        // instrs: Bin (derive), New, Bin (use). After the New, d is live and
        // the dead-base rule keeps p live with it.
        assert!(after[1].contains(d.index()));
        assert!(after[1].contains(p.index()), "base pinned live across the gc-point");
    }

    /// Path variables become live wherever the ambiguous derived value is.
    #[test]
    fn path_variable_liveness() {
        use crate::func::Function;
        use crate::ids::{FuncId, Temp};
        use crate::instr::{Instr, Terminator};
        let mut f =
            Function::new("t", FuncId(0), &[TempKind::Ptr, TempKind::Ptr, TempKind::Int], None);
        let t = f.new_temp(TempKind::Int);
        let bt = f.new_block();
        let bf = f.new_block();
        let join = f.new_block();
        f.block_mut(f.entry).term = Terminator::Br { cond: Temp(2), then_bb: bt, else_bb: bf };
        f.block_mut(bt).instrs.push(Instr::Bin { dst: t, op: BinOp::Add, a: Temp(0), b: Temp(2) });
        f.block_mut(bt).term = Terminator::Jump(join);
        f.block_mut(bf).instrs.push(Instr::Bin { dst: t, op: BinOp::Add, a: Temp(1), b: Temp(2) });
        f.block_mut(bf).term = Terminator::Jump(join);
        f.block_mut(join).term = Terminator::Ret(Some(t));
        f.ret_kind = Some(TempKind::Int);
        let deriv = analyze_and_resolve(&mut f);
        let pv = match deriv.deriv(t) {
            Some(crate::deriv::DerivKind::Ambiguous { path_var, .. }) => *path_var,
            other => panic!("expected ambiguous, got {other:?}"),
        };
        let lv = liveness(&f, Some(&deriv));
        assert!(lv.live_in[join.index()].contains(pv.index()), "path var live at join");
        assert!(lv.live_in[join.index()].contains(0), "base P live at join");
        assert!(lv.live_in[join.index()].contains(1), "base Q live at join");
    }
}
