//! Backward liveness over temps, with the paper's *dead base* rule (§4):
//! when derivation information is supplied, **a use of a derived value is a
//! use of each of its base values** (and of its path variable), which keeps
//! bases alive for the lifetime of values derived from them. Without the
//! rule, an optimizer may let a base die inside a loop that still uses a
//! value derived from it, leaving the collector unable to update the
//! derived value.

use crate::bitset::BitSet;
use crate::cfg;
use crate::deriv::DerivAnalysis;
use crate::func::Function;
use crate::ids::{BlockId, Temp};
use crate::instr::{Instr, Terminator};

/// Per-block liveness sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Temps live on entry to each block.
    pub live_in: Vec<BitSet>,
    /// Temps live on exit from each block.
    pub live_out: Vec<BitSet>,
}

/// Expands a plain use into the full use set: the temp itself plus, under
/// the dead-base rule, its transitive support.
fn expand_use(t: Temp, deriv: Option<&DerivAnalysis>, out: &mut Vec<Temp>) {
    out.push(t);
    if let Some(d) = deriv {
        d.expand_support(t, out);
    }
}

fn instr_uses(ins: &Instr, deriv: Option<&DerivAnalysis>, out: &mut Vec<Temp>) {
    let mut plain = Vec::new();
    ins.uses(&mut plain);
    for t in plain {
        expand_use(t, deriv, out);
    }
}

fn term_uses(term: &Terminator, deriv: Option<&DerivAnalysis>, out: &mut Vec<Temp>) {
    let mut plain = Vec::new();
    term.uses(&mut plain);
    for t in plain {
        expand_use(t, deriv, out);
    }
}

/// Computes liveness. Pass `Some(deriv)` to apply the dead-base rule; the
/// compiler always does, but `None` is useful to measure the rule's cost
/// (the §6.2 experiment compiles with gc support off).
#[must_use]
pub fn liveness(f: &Function, deriv: Option<&DerivAnalysis>) -> Liveness {
    let n_blocks = f.blocks.len();
    let n_temps = f.temp_count();
    let mut live_in = vec![BitSet::new(n_temps); n_blocks];
    let mut live_out = vec![BitSet::new(n_temps); n_blocks];
    let rpo = cfg::reverse_postorder(f);
    let mut uses_buf = Vec::new();
    let mut changed = true;
    while changed {
        changed = false;
        // Iterate blocks in post order (reverse of RPO) for fast backward
        // convergence.
        for &b in rpo.iter().rev() {
            let bi = b.index();
            // live_out = union of successors' live_in.
            let succs = f.block(b).term.successors();
            let mut out_set = BitSet::new(n_temps);
            for s in succs {
                out_set.union_with(&live_in[s.index()]);
            }
            if out_set != live_out[bi] {
                live_out[bi] = out_set.clone();
                changed = true;
            }
            // live_in = uses ∪ (live_out − defs), walked backward.
            let mut set = out_set;
            let block = f.block(b);
            uses_buf.clear();
            term_uses(&block.term, deriv, &mut uses_buf);
            for &t in &uses_buf {
                set.insert(t.index());
            }
            for ins in block.instrs.iter().rev() {
                if let Some(d) = ins.def() {
                    set.remove(d.index());
                }
                uses_buf.clear();
                instr_uses(ins, deriv, &mut uses_buf);
                for &t in &uses_buf {
                    set.insert(t.index());
                }
            }
            if set != live_in[bi] {
                live_in[bi] = set;
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

impl Liveness {
    /// The set of temps live **after** each instruction of block `b` (index
    /// `i` of the result corresponds to the program point just after
    /// `instrs[i]`). Used by the back end to compute gc-point live sets.
    #[must_use]
    pub fn live_after_each(
        &self,
        f: &Function,
        b: BlockId,
        deriv: Option<&DerivAnalysis>,
    ) -> Vec<BitSet> {
        let block = f.block(b);
        let n = block.instrs.len();
        let mut result = vec![BitSet::new(f.temp_count()); n];
        let mut set = self.live_out[b.index()].clone();
        let mut uses_buf = Vec::new();
        uses_buf.clear();
        term_uses(&block.term, deriv, &mut uses_buf);
        for &t in &uses_buf {
            set.insert(t.index());
        }
        for i in (0..n).rev() {
            result[i] = set.clone();
            let ins = &block.instrs[i];
            if let Some(d) = ins.def() {
                set.remove(d.index());
            }
            uses_buf.clear();
            instr_uses(ins, deriv, &mut uses_buf);
            for &t in &uses_buf {
                set.insert(t.index());
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::deriv::analyze_and_resolve;
    use crate::func::TempKind;
    use crate::instr::BinOp;

    /// Straight-line: t1 used by t2 is live between.
    #[test]
    fn straight_line_liveness() {
        let mut b = FuncBuilder::with_ret("f", &[TempKind::Int], Some(TempKind::Int));
        let t1 = b.constant(5);
        let t2 = b.bin(BinOp::Add, b.param(0), t1);
        b.ret(Some(t2));
        let f = b.finish();
        let lv = liveness(&f, None);
        // After the Const, both the param and t1 are live.
        let pts = lv.live_after_each(&f, f.entry, None);
        assert!(pts[0].contains(t1.index()));
        assert!(pts[0].contains(0));
        // After the Add, only t2 is live.
        assert!(pts[1].contains(t2.index()));
        assert!(!pts[1].contains(t1.index()));
    }

    /// The dead-base rule: without derivation info the base dies after the
    /// derivation; with it, the base stays live as long as the derived
    /// value does.
    #[test]
    fn dead_base_rule_extends_base_lifetime() {
        let mut b = FuncBuilder::new("f", &[TempKind::Ptr, TempKind::Int]);
        let p = b.param(0);
        let d = b.bin(BinOp::Add, p, b.param(1)); // derived from p
        let use1 = b.bin(BinOp::Add, d, b.param(1)); // d used later (also derived)
        b.ret(Some(use1));
        let mut f = b.finish();
        f.ret_kind = Some(TempKind::Int);
        let deriv = analyze_and_resolve(&mut f);

        let without = liveness(&f, None);
        let with = liveness(&f, Some(&deriv));
        let pts_without = without.live_after_each(&f, f.entry, None);
        let pts_with = with.live_after_each(&f, f.entry, Some(&deriv));
        // After the derivation of `use1`... p is dead without the rule once
        // d has been consumed, but the rule keeps p live because use1 is
        // (transitively) derived from it.
        let last = pts_without.len() - 1;
        assert!(!pts_without[last].contains(p.index()), "base dead without the rule");
        assert!(pts_with[last].contains(p.index()), "base kept alive by the rule");
    }

    /// Loop liveness: a temp defined before a loop and used inside is live
    /// around the back edge.
    #[test]
    fn loop_carried_liveness() {
        let mut b = FuncBuilder::new("f", &[TempKind::Int]);
        let x = b.constant(7);
        let header = b.block();
        let body = b.block();
        let exit = b.block();
        b.jump(header);
        b.switch_to(header);
        let c = b.bin(BinOp::Lt, b.param(0), x);
        b.br(c, body, exit);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let lv = liveness(&f, None);
        assert!(lv.live_in[header.index()].contains(x.index()));
        assert!(lv.live_out[body.index()].contains(x.index()));
        assert!(!lv.live_in[exit.index()].contains(x.index()));
    }

    /// Path variables become live wherever the ambiguous derived value is.
    #[test]
    fn path_variable_liveness() {
        use crate::func::Function;
        use crate::ids::{FuncId, Temp};
        use crate::instr::{Instr, Terminator};
        let mut f =
            Function::new("t", FuncId(0), &[TempKind::Ptr, TempKind::Ptr, TempKind::Int], None);
        let t = f.new_temp(TempKind::Int);
        let bt = f.new_block();
        let bf = f.new_block();
        let join = f.new_block();
        f.block_mut(f.entry).term = Terminator::Br { cond: Temp(2), then_bb: bt, else_bb: bf };
        f.block_mut(bt).instrs.push(Instr::Bin { dst: t, op: BinOp::Add, a: Temp(0), b: Temp(2) });
        f.block_mut(bt).term = Terminator::Jump(join);
        f.block_mut(bf).instrs.push(Instr::Bin { dst: t, op: BinOp::Add, a: Temp(1), b: Temp(2) });
        f.block_mut(bf).term = Terminator::Jump(join);
        f.block_mut(join).term = Terminator::Ret(Some(t));
        f.ret_kind = Some(TempKind::Int);
        let deriv = analyze_and_resolve(&mut f);
        let pv = match deriv.deriv(t) {
            Some(crate::deriv::DerivKind::Ambiguous { path_var, .. }) => *path_var,
            other => panic!("expected ambiguous, got {other:?}"),
        };
        let lv = liveness(&f, Some(&deriv));
        assert!(lv.live_in[join.index()].contains(pv.index()), "path var live at join");
        assert!(lv.live_in[join.index()].contains(0), "base P live at join");
        assert!(lv.live_in[join.index()].contains(1), "base Q live at join");
    }
}
