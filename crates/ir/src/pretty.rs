//! Human-readable IR dumps, for debugging and golden tests.

use std::fmt::Write as _;

use crate::func::{Function, Program};
use crate::instr::{Instr, Terminator};

fn fmt_instr(ins: &Instr) -> String {
    match ins {
        Instr::Const { dst, value } => format!("{dst} = {value}"),
        Instr::Copy { dst, src } => format!("{dst} = {src}"),
        Instr::Bin { dst, op, a, b } => format!("{dst} = {a} {op} {b}"),
        Instr::Un { dst, op, a } => format!("{dst} = {op} {a}"),
        Instr::Load { dst, addr, offset } => format!("{dst} = [{addr}{offset:+}]"),
        Instr::Store { addr, offset, src } => format!("[{addr}{offset:+}] = {src}"),
        Instr::LoadSlot { dst, slot, offset } => format!("{dst} = {slot}[{offset}]"),
        Instr::StoreSlot { slot, offset, src } => format!("{slot}[{offset}] = {src}"),
        Instr::SlotAddr { dst, slot } => format!("{dst} = &{slot}"),
        Instr::LoadGlobal { dst, global } => format!("{dst} = {global}"),
        Instr::StoreGlobal { global, src } => format!("{global} = {src}"),
        Instr::GlobalAddr { dst, global } => format!("{dst} = &{global}"),
        Instr::Call { dst: Some(d), func, args } => format!("{d} = call {func}{args:?}"),
        Instr::Call { dst: None, func, args } => format!("call {func}{args:?}"),
        Instr::CallRuntime { dst: Some(d), func, args } => format!("{d} = rt {func}{args:?}"),
        Instr::CallRuntime { dst: None, func, args } => format!("rt {func}{args:?}"),
        Instr::New { dst, ty, len: Some(l) } => format!("{dst} = new {ty}[{l}]"),
        Instr::New { dst, ty, len: None } => format!("{dst} = new {ty}"),
        Instr::GcPoint => "gcpoint".to_string(),
    }
}

fn fmt_term(t: &Terminator) -> String {
    match t {
        Terminator::Jump(b) => format!("jump {b}"),
        Terminator::Br { cond, then_bb, else_bb } => format!("br {cond} ? {then_bb} : {else_bb}"),
        Terminator::Ret(Some(t)) => format!("ret {t}"),
        Terminator::Ret(None) => "ret".to_string(),
    }
}

/// Formats one function.
#[must_use]
pub fn function_to_string(f: &Function) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "func {} ({} params, {} temps, {} slots):",
        f.name,
        f.n_params,
        f.temp_count(),
        f.slots.len()
    );
    for b in f.block_ids() {
        let _ = writeln!(s, "{b}:");
        for ins in &f.block(b).instrs {
            let _ = writeln!(s, "  {}", fmt_instr(ins));
        }
        let _ = writeln!(s, "  {}", fmt_term(&f.block(b).term));
    }
    s
}

/// Formats a whole program.
#[must_use]
pub fn program_to_string(p: &Program) -> String {
    let mut s = String::new();
    for f in &p.funcs {
        s.push_str(&function_to_string(f));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::func::TempKind;
    use crate::instr::BinOp;

    #[test]
    fn renders_instructions() {
        let mut b =
            FuncBuilder::with_ret("add", &[TempKind::Int, TempKind::Int], Some(TempKind::Int));
        let t = b.bin(BinOp::Add, b.param(0), b.param(1));
        b.ret(Some(t));
        let s = function_to_string(&b.finish());
        assert!(s.contains("func add"));
        assert!(s.contains("t2 = t0 + t1"));
        assert!(s.contains("ret t2"));
    }

    #[test]
    fn renders_memory_ops() {
        let mut b = FuncBuilder::new("m", &[TempKind::Ptr]);
        let v = b.load(b.param(0), 2, TempKind::Int);
        b.store(b.param(0), 3, v);
        b.ret(None);
        let s = function_to_string(&b.finish());
        assert!(s.contains("t1 = [t0+2]"));
        assert!(s.contains("[t0+3] = t1"));
    }
}
