//! A reference interpreter for IR programs.
//!
//! Executes a [`Program`] directly, with an ever-growing heap and **no
//! garbage collection** — objects never move, so derived values need no
//! maintenance. This gives an independent semantics against which the
//! optimizer and the VM+collector pipeline are differentially tested: any
//! program must produce the same output here, at every optimization level,
//! and on the VM with collections forced at every gc-point.

use std::collections::HashMap;

use m3gc_core::heap::HeapType;

use crate::func::{Function, Program};
use crate::ids::{FuncId, Temp};
use crate::instr::{Instr, RuntimeFn, Terminator};

/// Base address of the global area.
const GLOBAL_BASE: i64 = 1 << 20;
/// Base address of the slot (stack) area.
const STACK_BASE: i64 = 1 << 24;
/// Base address of the heap.
const HEAP_BASE: i64 = 1 << 32;

/// Abnormal termination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// Subscript out of range.
    RangeError,
    /// NIL dereference.
    NilError,
    /// Assertion failure.
    AssertError,
    /// The step budget was exhausted.
    OutOfFuel,
    /// Call depth limit exceeded.
    StackOverflow,
    /// A memory access fell outside every region (a compiler bug).
    WildAddress,
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Trap::RangeError => "subscript out of range",
            Trap::NilError => "attempt to dereference NIL",
            Trap::AssertError => "assertion failed",
            Trap::OutOfFuel => "step budget exhausted",
            Trap::StackOverflow => "call depth exceeded",
            Trap::WildAddress => "wild memory address",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for Trap {}

/// Result of a successful run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Value returned by `main`, if any.
    pub result: Option<i64>,
    /// Everything printed through the runtime services.
    pub output: String,
    /// Instructions executed.
    pub steps: u64,
    /// Objects allocated.
    pub allocations: u64,
}

/// The interpreter.
pub struct Interp<'a> {
    program: &'a Program,
    globals: Vec<i64>,
    stack: Vec<i64>,
    heap: Vec<i64>,
    output: String,
    fuel: u64,
    steps: u64,
    allocations: u64,
    depth: usize,
    global_offsets: HashMap<u32, i64>,
}

/// Default step budget.
pub const DEFAULT_FUEL: u64 = 200_000_000;
/// Maximum call depth.
const MAX_DEPTH: usize = 40_000;

impl<'a> Interp<'a> {
    /// Creates an interpreter for `program`.
    #[must_use]
    pub fn new(program: &'a Program) -> Interp<'a> {
        let mut global_offsets = HashMap::new();
        let mut off = 0i64;
        for (i, g) in program.globals.iter().enumerate() {
            global_offsets.insert(i as u32, off);
            off += i64::from(g.words);
        }
        Interp {
            program,
            globals: vec![0; program.globals_words() as usize],
            stack: Vec::new(),
            heap: Vec::new(),
            output: String::new(),
            fuel: DEFAULT_FUEL,
            steps: 0,
            allocations: 0,
            depth: 0,
            global_offsets,
        }
    }

    /// Sets the step budget.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Runs `main` with no arguments.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on abnormal termination.
    pub fn run(mut self) -> Result<Outcome, Trap> {
        let result = self.exec(self.program.main, &[])?;
        Ok(Outcome {
            result,
            output: self.output,
            steps: self.steps,
            allocations: self.allocations,
        })
    }

    fn read(&self, addr: i64) -> Result<i64, Trap> {
        if addr >= HEAP_BASE {
            let i = (addr - HEAP_BASE) as usize;
            self.heap.get(i).copied().ok_or(Trap::WildAddress)
        } else if addr >= STACK_BASE {
            let i = (addr - STACK_BASE) as usize;
            self.stack.get(i).copied().ok_or(Trap::WildAddress)
        } else if addr >= GLOBAL_BASE {
            let i = (addr - GLOBAL_BASE) as usize;
            self.globals.get(i).copied().ok_or(Trap::WildAddress)
        } else if addr >= 0 {
            // NIL plus a field or element offset: a nil dereference,
            // matching the VM's classification of the sub-global window.
            Err(Trap::NilError)
        } else {
            Err(Trap::WildAddress)
        }
    }

    fn write(&mut self, addr: i64, value: i64) -> Result<(), Trap> {
        if addr >= HEAP_BASE {
            let i = (addr - HEAP_BASE) as usize;
            *self.heap.get_mut(i).ok_or(Trap::WildAddress)? = value;
        } else if addr >= STACK_BASE {
            let i = (addr - STACK_BASE) as usize;
            *self.stack.get_mut(i).ok_or(Trap::WildAddress)? = value;
        } else if addr >= GLOBAL_BASE {
            let i = (addr - GLOBAL_BASE) as usize;
            *self.globals.get_mut(i).ok_or(Trap::WildAddress)? = value;
        } else if addr >= 0 {
            return Err(Trap::NilError);
        } else {
            return Err(Trap::WildAddress);
        }
        Ok(())
    }

    fn allocate(&mut self, ty_id: u32, len: Option<i64>) -> Result<i64, Trap> {
        let ty = &self.program.types.types[ty_id as usize];
        let len = match len {
            Some(l) if l < 0 => return Err(Trap::RangeError),
            Some(l) => l as u32,
            None => 0,
        };
        let words = ty.object_words(len) as usize;
        let base = self.heap.len();
        self.heap.resize(base + words, 0);
        self.heap[base] = i64::from(ty_id);
        if matches!(ty, HeapType::Array { .. }) {
            self.heap[base + 1] = i64::from(len);
        }
        self.allocations += 1;
        Ok(HEAP_BASE + base as i64)
    }

    fn runtime(&mut self, f: RuntimeFn, args: &[i64]) -> Result<(), Trap> {
        match f {
            RuntimeFn::PrintInt => {
                self.output.push_str(&args[0].to_string());
                Ok(())
            }
            RuntimeFn::PrintChar => {
                let c = u32::try_from(args[0]).ok().and_then(char::from_u32).unwrap_or('?');
                self.output.push(c);
                Ok(())
            }
            RuntimeFn::PrintLn => {
                self.output.push('\n');
                Ok(())
            }
            RuntimeFn::RangeError => Err(Trap::RangeError),
            RuntimeFn::NilError => Err(Trap::NilError),
            RuntimeFn::AssertError => Err(Trap::AssertError),
        }
    }

    fn exec(&mut self, func: FuncId, args: &[i64]) -> Result<Option<i64>, Trap> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Trap::StackOverflow);
        }
        let f: &Function = &self.program.funcs[func.index()];
        debug_assert_eq!(args.len(), f.n_params);
        let mut temps = vec![0i64; f.temp_count()];
        temps[..args.len()].copy_from_slice(args);
        // Allocate this frame's slots on the interpreter stack.
        let slot_words: u32 = f.slots.iter().map(|s| s.words).sum();
        let frame_base = self.stack.len();
        self.stack.resize(frame_base + slot_words as usize, 0);
        let mut slot_offsets = Vec::with_capacity(f.slots.len());
        {
            let mut off = frame_base;
            for s in &f.slots {
                slot_offsets.push(off);
                off += s.words as usize;
            }
        }

        let mut bb = f.entry;
        let result = 'run: loop {
            let block = f.block(bb);
            for ins in &block.instrs {
                self.steps += 1;
                if self.steps > self.fuel {
                    return Err(Trap::OutOfFuel);
                }
                match ins {
                    Instr::Const { dst, value } => temps[dst.index()] = *value,
                    Instr::Copy { dst, src } => temps[dst.index()] = temps[src.index()],
                    Instr::Bin { dst, op, a, b } => {
                        temps[dst.index()] = op.eval(temps[a.index()], temps[b.index()]);
                    }
                    Instr::Un { dst, op, a } => temps[dst.index()] = op.eval(temps[a.index()]),
                    Instr::Load { dst, addr, offset } => {
                        temps[dst.index()] = self.read(temps[addr.index()] + i64::from(*offset))?;
                    }
                    Instr::Store { addr, offset, src } => {
                        self.write(temps[addr.index()] + i64::from(*offset), temps[src.index()])?;
                    }
                    Instr::LoadSlot { dst, slot, offset } => {
                        temps[dst.index()] =
                            self.stack[slot_offsets[slot.index()] + *offset as usize];
                    }
                    Instr::StoreSlot { slot, offset, src } => {
                        self.stack[slot_offsets[slot.index()] + *offset as usize] =
                            temps[src.index()];
                    }
                    Instr::SlotAddr { dst, slot } => {
                        temps[dst.index()] = STACK_BASE + slot_offsets[slot.index()] as i64;
                    }
                    Instr::LoadGlobal { dst, global } => {
                        temps[dst.index()] = self.globals[self.global_offsets[&global.0] as usize];
                    }
                    Instr::StoreGlobal { global, src } => {
                        self.globals[self.global_offsets[&global.0] as usize] = temps[src.index()];
                    }
                    Instr::GlobalAddr { dst, global } => {
                        temps[dst.index()] = GLOBAL_BASE + self.global_offsets[&global.0];
                    }
                    Instr::Call { dst, func, args } => {
                        let arg_vals: Vec<i64> = args.iter().map(|a| temps[a.index()]).collect();
                        let r = self.exec(*func, &arg_vals)?;
                        if let Some(d) = dst {
                            temps[d.index()] = r.unwrap_or(0);
                        }
                    }
                    Instr::CallRuntime { dst, func, args } => {
                        let arg_vals: Vec<i64> = args.iter().map(|a| temps[a.index()]).collect();
                        self.runtime(*func, &arg_vals)?;
                        if let Some(d) = dst {
                            temps[d.index()] = 0;
                        }
                    }
                    Instr::New { dst, ty, len } => {
                        let l = len.map(|t| temps[t.index()]);
                        temps[dst.index()] = self.allocate(ty.0, l)?;
                    }
                    Instr::GcPoint => {}
                }
            }
            self.steps += 1;
            if self.steps > self.fuel {
                return Err(Trap::OutOfFuel);
            }
            match &block.term {
                Terminator::Jump(b) => bb = *b,
                Terminator::Br { cond, then_bb, else_bb } => {
                    bb = if temps[cond.index()] != 0 { *then_bb } else { *else_bb };
                }
                Terminator::Ret(v) => break 'run v.map(|t: Temp| temps[t.index()]),
            }
        };
        self.stack.truncate(frame_base);
        self.depth -= 1;
        Ok(result)
    }
}

/// Convenience: runs `program`'s main and returns the outcome.
///
/// # Errors
///
/// Returns a [`Trap`] on abnormal termination.
pub fn run_program(program: &Program) -> Result<Outcome, Trap> {
    Interp::new(program).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::func::{GlobalInfo, Program, TempKind};
    use crate::instr::BinOp;
    use m3gc_core::heap::HeapType;

    fn one_func_program(b: FuncBuilder) -> Program {
        let mut p = Program::new();
        let id = p.add_func(b.finish());
        p.main = id;
        p
    }

    #[test]
    fn arithmetic_and_return() {
        let mut b = FuncBuilder::with_ret("main", &[], Some(TempKind::Int));
        let x = b.constant(6);
        let y = b.constant(7);
        let r = b.bin(BinOp::Mul, x, y);
        b.ret(Some(r));
        let out = run_program(&one_func_program(b)).unwrap();
        assert_eq!(out.result, Some(42));
    }

    #[test]
    fn heap_allocation_and_fields() {
        let mut p = Program::new();
        let ty =
            p.types.add(HeapType::Record { name: "Pair".into(), words: 2, ptr_offsets: vec![] });
        let mut b = FuncBuilder::with_ret("main", &[], Some(TempKind::Int));
        let obj = b.new_object(ty, None);
        let v = b.constant(99);
        b.store(obj, 1, v); // first field (offset 1 past header)
        let r = b.load(obj, 1, TempKind::Int);
        b.ret(Some(r));
        let f = b.finish();
        let id = p.add_func(f);
        p.main = id;
        let out = run_program(&p).unwrap();
        assert_eq!(out.result, Some(99));
        assert_eq!(out.allocations, 1);
    }

    #[test]
    fn nil_dereference_traps() {
        let mut b = FuncBuilder::new("main", &[]);
        let nil = b.nil();
        let _ = b.load(nil, 0, TempKind::Int);
        b.ret(None);
        assert_eq!(run_program(&one_func_program(b)), Err(Trap::NilError));
    }

    #[test]
    fn printing() {
        let mut b = FuncBuilder::new("main", &[]);
        let x = b.constant(12);
        b.call_runtime(RuntimeFn::PrintInt, vec![x]);
        b.call_runtime(RuntimeFn::PrintLn, vec![]);
        b.ret(None);
        let out = run_program(&one_func_program(b)).unwrap();
        assert_eq!(out.output, "12\n");
    }

    #[test]
    fn calls_and_recursion() {
        // fib(n) = n < 2 ? n : fib(n-1) + fib(n-2)
        let mut p = Program::new();
        let mut fb = FuncBuilder::with_ret("fib", &[TempKind::Int], Some(TempKind::Int));
        let n = fb.param(0);
        let two = fb.constant(2);
        let c = fb.bin(BinOp::Lt, n, two);
        let base = fb.block();
        let rec = fb.block();
        fb.br(c, base, rec);
        fb.switch_to(base);
        fb.ret(Some(n));
        fb.switch_to(rec);
        let one = fb.constant(1);
        let n1 = fb.bin(BinOp::Sub, n, one);
        let a = fb.call(FuncId(0), vec![n1], Some(TempKind::Int)).unwrap();
        let n2 = fb.bin(BinOp::Sub, n, two);
        let bv = fb.call(FuncId(0), vec![n2], Some(TempKind::Int)).unwrap();
        let s = fb.bin(BinOp::Add, a, bv);
        fb.ret(Some(s));
        p.add_func(fb.finish());
        let mut mb = FuncBuilder::with_ret("main", &[], Some(TempKind::Int));
        let ten = mb.constant(10);
        let r = mb.call(FuncId(0), vec![ten], Some(TempKind::Int)).unwrap();
        mb.ret(Some(r));
        let id = p.add_func(mb.finish());
        p.main = id;
        assert_eq!(run_program(&p).unwrap().result, Some(55));
    }

    #[test]
    fn slots_and_addresses() {
        use crate::func::SlotInfo;
        let mut b = FuncBuilder::with_ret("main", &[], Some(TempKind::Int));
        let s = b.slot(SlotInfo::scalar("x", TempKind::Int, true));
        let v = b.constant(31);
        b.store_slot(s, 0, v);
        let addr = b.slot_addr(s);
        let r = b.load(addr, 0, TempKind::Int); // read back through the address
        b.ret(Some(r));
        assert_eq!(run_program(&one_func_program(b)).unwrap().result, Some(31));
    }

    #[test]
    fn globals() {
        let mut p = Program::new();
        let g = p.add_global(GlobalInfo::scalar("g", TempKind::Int));
        let mut b = FuncBuilder::with_ret("main", &[], Some(TempKind::Int));
        let v = b.constant(5);
        b.store_global(g, v);
        let r = b.load_global(g, TempKind::Int);
        b.ret(Some(r));
        let id = p.add_func(b.finish());
        p.main = id;
        assert_eq!(run_program(&p).unwrap().result, Some(5));
    }

    #[test]
    fn fuel_limit() {
        let mut b = FuncBuilder::new("main", &[]);
        let header = b.block();
        b.jump(header);
        b.switch_to(header);
        b.jump(header);
        let p = one_func_program(b);
        let mut i = Interp::new(&p);
        i.set_fuel(1000);
        assert_eq!(i.run(), Err(Trap::OutOfFuel));
    }

    #[test]
    fn derived_values_work_without_gc() {
        // p + 2 used as an address: interior pointer arithmetic.
        let mut p = Program::new();
        let ty = p.types.add(HeapType::Record { name: "R".into(), words: 3, ptr_offsets: vec![] });
        let mut b = FuncBuilder::with_ret("main", &[], Some(TempKind::Int));
        let obj = b.new_object(ty, None);
        let v = b.constant(77);
        b.store(obj, 2, v);
        let two = b.constant(2);
        let interior = b.bin(BinOp::Add, obj, two); // derived value
        let r = b.load(interior, 0, TempKind::Int);
        b.ret(Some(r));
        let id = p.add_func(b.finish());
        p.main = id;
        assert_eq!(run_program(&p).unwrap().result, Some(77));
    }
}
