//! Runs the paper's gc-stress benchmark `destroy` (§6.1/§6.3) across a
//! range of heap sizes, printing per-collection statistics — the workload
//! behind the paper's stack-tracing timings.
//!
//! ```sh
//! cargo run --release --example destroy_gc
//! ```

use m3gc::compiler::run_module;

fn main() {
    println!("destroy: complete tree (branch 3, depth 6), 60 random subtree replacements\n");
    println!(
        "{:>10} {:>6} {:>10} {:>10} {:>9} {:>12} {:>12}",
        "semi(words)", "GCs", "objs/GC", "words/GC", "frames/GC", "trace(us)/GC", "total(us)/GC"
    );
    for semi in [6 * 1024, 8 * 1024, 16 * 1024, 64 * 1024] {
        let module = m3gc_bench_programs::compile_destroy();
        let out = run_module(module, semi).expect("destroy runs");
        assert_eq!(out.output, "1093 3493\n");
        let n = out.collections.max(1) as f64;
        println!(
            "{:>10} {:>6} {:>10.0} {:>10.0} {:>9.1} {:>12.1} {:>12.1}",
            semi,
            out.collections,
            out.gc_total.objects_copied as f64 / n,
            out.gc_total.words_copied as f64 / n,
            out.gc_total.frames_traced as f64 / n,
            out.gc_total.trace_time.as_secs_f64() * 1e6 / n,
            out.gc_total.total_time.as_secs_f64() * 1e6 / n,
        );
    }
    println!(
        "\nSmaller heaps collect more often but copy less per collection; the\n\
         stack-trace share stays a small fraction of total gc time (§6.3)."
    );
}

/// Inline copy of the benchmark source so the example is self-contained.
mod m3gc_bench_programs {
    const DESTROY: &str = include_str!("../crates/bench/programs/destroy.m3");

    pub fn compile_destroy() -> m3gc::vm::VmModule {
        m3gc::compiler::compile(DESTROY, &m3gc::compiler::Options::o2()).expect("compiles")
    }
}
