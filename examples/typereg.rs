//! Runs the paper's `typereg` benchmark (type registration with
//! structural equivalence) and prints its Table 1/2 statistics at both
//! optimization levels — a single-program slice of the full evaluation.
//!
//! ```sh
//! cargo run --example typereg
//! ```

use m3gc::compiler::{compile, run_module, Options};
use m3gc::core::encode::Scheme;
use m3gc::core::stats::{size_report, table_stats};

const TYPEREG: &str = include_str!("../crates/bench/programs/typereg.m3");

fn main() {
    for (label, opts) in [("typereg", Options::o0()), ("typereg-opt", Options::o2())] {
        let module = compile(TYPEREG, &opts).expect("compiles");
        let stats = table_stats(&module.logical_maps);
        let pp = size_report(&module.logical_maps, Scheme::DELTA_MAIN_PP, module.code_size());
        let plain = size_report(&module.logical_maps, Scheme::DELTA_PLAIN, module.code_size());

        println!("== {label} ==");
        println!("  code size:        {} bytes", module.code_size());
        println!(
            "  gc-points:        {} ({} with non-empty tables)",
            stats.total_gc_points, stats.ngc
        );
        println!("  pointer slots:    {}", stats.nptrs);
        println!(
            "  tables:           {:.1}% of code plain, {:.1}% with Previous+Packing",
            plain.percent_of_code, pp.percent_of_code
        );

        let out = run_module(module, 640).expect("runs");
        println!("  output:           {}", out.output.trim_end());
        println!("  collections:      {}", out.collections);
        assert_eq!(out.output, "7 113\n");
        println!();
    }
    println!(
        "The registry holds 7 canonical types; 113 of 120 registrations were\n\
         structural duplicates — all discovered by recursive comparison over\n\
         heap-allocated descriptors that the collector is free to move."
    );
}
