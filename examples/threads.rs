//! Pre-emptive threads and the §5.3 collection protocol: when one
//! thread's allocation fails, the others are resumed until each blocks at
//! a gc-point (calls, allocations, or the gc-points the compiler inserted
//! in allocation-free loops), and only then does the collector run.
//!
//! ```sh
//! cargo run --example threads
//! ```

use m3gc::compiler::{compile, Options};
use m3gc::runtime::{ExecConfig, Executor};
use m3gc::vm::machine::{Machine, MachineConfig, ThreadStatus};

const PROGRAM: &str = r#"
MODULE Workers;

TYPE List = REF RECORD head: INTEGER; tail: List END;

(* Allocates heavily: the usual collection trigger. *)
PROCEDURE Churn(rounds: INTEGER): INTEGER =
VAR l: List; i, j, s: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO rounds DO
    l := NIL;
    FOR j := 1 TO 15 DO
      WITH c = NEW(List) DO c.head := j; c.tail := l; l := c; END;
    END;
    WHILE l # NIL DO s := s + l.head; l := l.tail; END;
  END;
  RETURN s;
END Churn;

(* Pure computation: never allocates. Without the compiler-inserted loop
   gc-point, this thread could never be stopped for a collection. *)
PROCEDURE Crunch(n: INTEGER): INTEGER =
VAR i, h: INTEGER;
BEGIN
  h := 7;
  FOR i := 1 TO n DO
    h := (h * 31 + i) MOD 1000003;
  END;
  RETURN h;
END Crunch;

BEGIN
  PutInt(Churn(40));
  PutLn();
END Workers.
"#;

fn main() {
    let module = compile(PROGRAM, &Options::o2()).expect("compiles");
    let machine = Machine::new(
        module,
        MachineConfig {
            semi_words: 512,
            stack_words: 1 << 14,
            max_threads: 4,
            ..MachineConfig::default()
        },
    );
    let mut ex = Executor::new(machine, ExecConfig::default());

    // Thread 0: the module body (allocating). Threads 1 and 2: one more
    // allocator and one pure cruncher.
    ex.machine.spawn(ex.machine.module.main, &[]);
    let churn = proc_id(&ex.machine, "Churn");
    let crunch = proc_id(&ex.machine, "Crunch");
    ex.machine.spawn(churn, &[25]);
    ex.machine.spawn(crunch, &[3_000_000]);

    let out = ex.run().expect("all threads finish");
    println!("program output: {}", out.output.trim_end());
    println!("collections:    {}", out.collections);
    println!("frames traced:  {}", out.gc_total.frames_traced);
    println!(
        "threads:        {:?}",
        ex.machine.threads.iter().map(|t| t.status).collect::<Vec<_>>()
    );
    assert!(out.collections > 0);
    assert!(ex.machine.threads.iter().all(|t| t.status == ThreadStatus::Finished));
    println!(
        "\nEvery collection required all three threads to stand at gc-points —\n\
         the cruncher only has them because the compiler put one in its loop."
    );
}

fn proc_id(machine: &Machine, name: &str) -> u16 {
    machine
        .module
        .procs
        .iter()
        .position(|p| p.name == name)
        .unwrap_or_else(|| panic!("no procedure named `{name}`")) as u16
}
