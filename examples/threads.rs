//! Real OS-thread mutators and the §5.3 collection protocol: when one
//! thread's allocation fails, a stop-the-world handshake is requested and
//! every other mutator parks at its next gc-point (calls, allocations, or
//! the explicit poll the compiler inserted in allocation-free loops).
//! Only then do the parallel gc workers scan the parked stacks and run
//! the work-stealing copy.
//!
//! ```sh
//! cargo run --example threads
//! ```

use m3gc::compiler::{compile, Options};
use m3gc::runtime::{GcStrategy, ParExecutor, RuntimeOptions};
use m3gc::vm::{ParLayout, ParMachine};

/// Every mutator runs the module body. All mutable state is
/// procedure-local: module globals are *shared* between OS-thread
/// mutators, so a deterministic program keeps its hands off them.
const PROGRAM: &str = r#"
MODULE Workers;

TYPE List = REF RECORD head: INTEGER; tail: List END;

(* Allocates heavily: the usual collection trigger. *)
PROCEDURE Churn(rounds: INTEGER): INTEGER =
VAR l: List; i, j, s: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO rounds DO
    l := NIL;
    FOR j := 1 TO 15 DO
      WITH c = NEW(List) DO c.head := j; c.tail := l; l := c; END;
    END;
    WHILE l # NIL DO s := s + l.head; l := l.tail; END;
  END;
  RETURN s;
END Churn;

(* Pure computation: never allocates. Without the compiler-inserted loop
   gc-point this thread could outrun every handshake. *)
PROCEDURE Crunch(n: INTEGER): INTEGER =
VAR i, h: INTEGER;
BEGIN
  h := 7;
  FOR i := 1 TO n DO
    h := (h * 31 + i) MOD 1000003;
  END;
  RETURN h;
END Crunch;

BEGIN
  PutInt(Churn(40));
  PutInt(Crunch(300000));
  PutLn();
END Workers.
"#;

fn main() {
    let module = compile(PROGRAM, &Options::o2()).expect("compiles");
    let vm = ParMachine::new(
        module,
        ParLayout { semi_words: 2048, stack_words: 1 << 14, mutators: 3, ..ParLayout::default() },
    );
    let mut ex =
        ParExecutor::new(vm, RuntimeOptions::new().strategy(GcStrategy::Parallel).gc_workers(2));

    let out = ex.run_main().expect("all mutators finish");
    println!("program output (3 mutators, tid order):");
    for (tid, o) in out.outputs.iter().enumerate() {
        println!("  mutator {tid}: {}", o.trim_end());
    }
    println!("collections:    {}", out.collections);
    let polls: u64 = out.gc_each.iter().map(|s| s.parked_at_polls).sum();
    let allocs: u64 = out.gc_each.iter().map(|s| s.parked_at_allocs).sum();
    println!("parked at loop polls: {polls}, at allocations: {allocs}");
    let max_handshake =
        out.gc_each.iter().map(|s| s.handshake_time.as_secs_f64() * 1e6).fold(0.0, f64::max);
    println!("worst handshake: {max_handshake:.1} us");
    assert!(out.collections > 0);
    assert_eq!(out.outputs.iter().filter(|o| *o == &out.outputs[0]).count(), 3);
    println!(
        "\nEvery collection stopped all three OS threads at gc-points —\n\
         the cruncher phase only parks because the compiler put a poll in its loop."
    );
}
