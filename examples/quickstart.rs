//! Quickstart: compile a Mini-M3 program, run it on the VM under a small
//! heap, and watch the compacting collector work.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use m3gc::compiler::{compile, run_module, Options};

const PROGRAM: &str = r#"
MODULE Quickstart;

TYPE
  List = REF RECORD head: INTEGER; tail: List END;

PROCEDURE Cons(h: INTEGER; t: List): List =
VAR c: List;
BEGIN
  c := NEW(List);
  c.head := h;
  c.tail := t;
  RETURN c;
END Cons;

PROCEDURE Sum(l: List): INTEGER =
VAR s: INTEGER;
BEGIN
  s := 0;
  WHILE l # NIL DO
    s := s + l.head;
    l := l.tail;
  END;
  RETURN s;
END Sum;

VAR l: List; i, total: INTEGER;
BEGIN
  total := 0;
  FOR i := 1 TO 50 DO
    (* Build a fresh list each round; the previous one becomes garbage. *)
    l := NIL;
    FOR i := 1 TO 20 DO
      l := Cons(i, l);
    END;
    total := total + Sum(l);
  END;
  PutInt(total);
  PutLn();
END Quickstart.
"#;

fn main() {
    // Compile at -O2 with full gc support (tables under δ-main+PP).
    let module = compile(PROGRAM, &Options::o2()).expect("program compiles");
    println!(
        "compiled: {} bytes of code, {} bytes of gc tables ({} procedures)",
        module.code_size(),
        module.gc_maps.bytes.len(),
        module.procs.len()
    );

    // A deliberately small heap (1024-word semispaces) so the collector
    // runs many times; every object is moved on every collection.
    let outcome = run_module(module, 1024).expect("program runs");
    println!("output:      {}", outcome.output.trim_end());
    println!("collections: {}", outcome.collections);
    println!(
        "objects moved: {} ({} words)",
        outcome.gc_total.objects_copied, outcome.gc_total.words_copied
    );
    println!("frames traced: {}", outcome.gc_total.frames_traced);
    assert_eq!(outcome.output, "10500\n");
}
