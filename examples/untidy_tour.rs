//! A guided tour of *untidy pointers* (paper §2): shows, for a program
//! whose loop keeps an interior pointer live across allocations, the
//! generated code, the gc-point tables (stack, register and derivation
//! tables), and the collector updating a derived value when its base
//! object moves.
//!
//! ```sh
//! cargo run --example untidy_tour
//! ```

use m3gc::compiler::{compile, run_module, Options};
use m3gc::core::stats::table_stats;

const PROGRAM: &str = r#"
MODULE Tour;

TYPE
  A = REF ARRAY [7..13] OF INTEGER;   (* non-zero lower bound: §2's
                                         virtual-array-origin example *)
  R = REF RECORD x: INTEGER END;

VAR a: A; i, s: INTEGER; junk: R;

BEGIN
  a := NEW(A);
  FOR i := 7 TO 13 DO a[i] := i * 10; END;
  s := 0;
  FOR i := 7 TO 13 DO
    WITH h = a[i] DO              (* h is an interior pointer: derived *)
      junk := NEW(R);             (* gc-point: the array may move here *)
      junk.x := i;
      s := s + h;                 (* h must still point at a[i]! *)
    END;
  END;
  PutInt(s);
  PutLn();
END Tour.
"#;

fn main() {
    let module = compile(PROGRAM, &Options::o2()).expect("compiles");

    println!("=== generated code (gc-points marked with *) ===");
    println!("{}", m3gc::vm::disasm::disassemble(&module));

    println!("=== gc-point tables ===");
    for proc in &module.logical_maps.procs {
        println!("procedure `{}`: ground table {:?}", proc.name, proc.ground);
        for pt in &proc.points {
            println!(
                "  pc {:>4}: stack slots {:?}, regs {}, {} derivation(s)",
                pt.pc,
                proc.ground
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| pt.live_stack.contains(&(*i as u32)))
                    .map(|(_, g)| g.to_string())
                    .collect::<Vec<_>>(),
                pt.regs,
                pt.derivations.len()
            );
            for d in &pt.derivations {
                println!("           derivation: {d}");
            }
        }
    }
    let stats = table_stats(&module.logical_maps);
    println!(
        "\n{} gc-points ({} non-empty), {} pointer slots, {} derivation tables",
        stats.total_gc_points, stats.ngc, stats.nptrs, stats.nder
    );

    // Run under a heap so small that the array moves during the WITH body.
    let outcome = run_module(module, 20).expect("runs");
    println!("\n=== execution under a 20-word semispace ===");
    println!("output:        {}", outcome.output.trim_end());
    println!("collections:   {}", outcome.collections);
    println!("derived values updated across all collections: {}", outcome.gc_total.derived_updated);
    assert_eq!(outcome.output, "700\n");
    assert!(outcome.collections > 0, "expected the array to move at least once");
    println!("\nThe interior pointer followed its array through every move.");
}
