//! Integration tests: every untidy-pointer scenario from the paper's §2
//! and §4, written in Mini-M3, compiled at -O0 and -O2, and executed with
//! a collection forced at **every** allocation (gc-torture). The output
//! must match the reference interpreter (which never moves objects), so
//! any derived value the tables fail to describe — or mis-describe — is
//! caught immediately as corrupted data.

use m3gc::compiler::{compile, reference_output, run_module_with, Options};
use m3gc::runtime::RuntimeOptions;

fn torture(src: &str) {
    let expected = reference_output(src).unwrap_or_else(|e| panic!("reference: {e}"));
    for (name, opts) in [("O0", Options::o0()), ("O2", Options::o2())] {
        // Plain small heap first.
        let module = compile(src, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
        let out = run_module_with(module, 2048, RuntimeOptions::new())
            .unwrap_or_else(|e| panic!("{name} small heap: {e}"));
        assert_eq!(out.output, expected, "{name} small heap");
        // Then a collection at every allocation.
        let module = compile(src, &opts).unwrap();
        let out = run_module_with(module, 1 << 15, RuntimeOptions::new().torture(true))
            .unwrap_or_else(|e| panic!("{name} torture: {e}"));
        assert_eq!(out.output, expected, "{name} torture");
        assert!(out.collections > 0, "{name}: torture must collect");
    }
}

/// §2 "Strength Reduction": an array-initialization loop whose address
/// computation becomes a roving pointer at -O2 (`*p++ = 13`), live across
/// the loop's gc-point.
#[test]
fn strength_reduction_roving_pointer() {
    torture(
        "MODULE M;
         TYPE A = REF ARRAY [1..30] OF INTEGER;
              R = REF RECORD x: INTEGER END;
         VAR a: A; i, s: INTEGER; junk: R;
         BEGIN
           a := NEW(A);
           FOR i := 1 TO 30 DO
             a[i] := 13;
             junk := NEW(R);     (* gc-point inside the loop *)
             junk.x := i;
           END;
           s := 0;
           FOR i := 1 TO 30 DO s := s + a[i]; END;
           PutInt(s);
         END M.",
    );
}

/// §2 "Virtual Array Origin": ARRAY [7..13] — at -O2 the hoisted origin
/// `&A[0]` points *before* the array's first element.
#[test]
fn virtual_array_origin() {
    torture(
        "MODULE M;
         TYPE A = REF ARRAY [7..13] OF INTEGER;
              R = REF RECORD x: INTEGER END;
         VAR a: A; i, s: INTEGER; junk: R;
         BEGIN
           a := NEW(A);
           FOR i := 7 TO 13 DO
             a[i] := i;
             junk := NEW(R);
             junk.x := i;
           END;
           s := 0;
           FOR i := 7 TO 13 DO s := s + a[i]; END;
           PutInt(s);
         END M.",
    );
}

/// §2 "Common Subexpression Elimination": `A[i,j] := ..; A[i,k] := ..`
/// (modelled as arrays of arrays) shares `&A[i]` at -O2.
#[test]
fn cse_shared_element_address() {
    torture(
        "MODULE M;
         TYPE Row = REF ARRAY [0..9] OF INTEGER;
              Mat = REF ARRAY [0..4] OF Row;
              R = REF RECORD x: INTEGER END;
         VAR m: Mat; i, s: INTEGER; junk: R;
         BEGIN
           m := NEW(Mat);
           FOR i := 0 TO 4 DO m[i] := NEW(Row); END;
           FOR i := 0 TO 4 DO
             m[i][2] := 10;
             junk := NEW(R);
             junk.x := i;
             m[i][7] := 20;
           END;
           s := 0;
           FOR i := 0 TO 4 DO s := s + m[i][2] + m[i][7]; END;
           PutInt(s);
         END M.",
    );
}

/// §2 "Double Indexing" (pointer difference): two arrays walked with one
/// derived index — here the difference of two interior pointers feeds an
/// address at -O2 via CSE of the shared subexpressions.
#[test]
fn pointer_heavy_double_walk() {
    torture(
        "MODULE M;
         TYPE A = REF ARRAY [0..19] OF INTEGER;
              R = REF RECORD x: INTEGER END;
         VAR a, b: A; i, s: INTEGER; junk: R;
         BEGIN
           a := NEW(A);
           b := NEW(A);
           FOR i := 0 TO 19 DO
             a[i] := 1;
             b[i] := 2;
             junk := NEW(R);
             junk.x := i;
           END;
           s := 0;
           FOR i := 0 TO 19 DO s := s + a[i] + b[i]; END;
           PutInt(s);
         END M.",
    );
}

/// §4 "Dead Base": the base list pointer is consumed by the walk (`l :=
/// l.tail`) while a derived alias is still live; the dead-base rule keeps
/// the base recoverable across every collection.
#[test]
fn dead_base_walked_list() {
    torture(
        "MODULE M;
         TYPE A = REF ARRAY [0..9] OF INTEGER;
              R = REF RECORD x: INTEGER END;
         VAR a: A; i, s: INTEGER; junk: R;
         BEGIN
           a := NEW(A);
           FOR i := 0 TO 9 DO a[i] := i * 3; END;
           s := 0;
           FOR i := 0 TO 9 DO
             WITH h = a[i] DO
               junk := NEW(R);
               junk.x := i;
               s := s + h;
             END;
           END;
           PutInt(s);
         END M.",
    );
}

/// §4 "Indirect References": a VAR argument denoting a heap field reaches
/// the callee through memory; the intermediate reference is preserved so
/// the collector can update the pushed address.
#[test]
fn indirect_reference_var_args() {
    torture(
        "MODULE M;
         TYPE Inner = REF RECORD v: INTEGER END;
              Outer = REF RECORD inner: Inner END;
              R = REF RECORD x: INTEGER END;
         PROCEDURE Bump(VAR v: INTEGER) =
         VAR junk: R;
         BEGIN
           junk := NEW(R);     (* the outer/inner records may move here *)
           junk.x := 1;
           v := v + 1;
         END Bump;
         VAR o: Outer; i: INTEGER;
         BEGIN
           o := NEW(Outer);
           o.inner := NEW(Inner);
           o.inner.v := 0;
           FOR i := 1 TO 20 DO
             Bump(o.inner.v);
           END;
           PutInt(o.inner.v);
         END M.",
    );
}

/// §4 VAR-parameter *forwarding*: the address passes through a middle
/// frame; the caller-before-callee re-derive ordering fixes the chain.
#[test]
fn var_param_forwarding_chain() {
    torture(
        "MODULE M;
         TYPE R = REF RECORD v: INTEGER END;
              J = REF RECORD x: INTEGER END;
         PROCEDURE Leaf(VAR v: INTEGER) =
         VAR junk: J;
         BEGIN
           junk := NEW(J);
           junk.x := v;
           v := v + 1;
         END Leaf;
         PROCEDURE Middle(VAR v: INTEGER) =
         BEGIN
           Leaf(v);
         END Middle;
         PROCEDURE Top(VAR v: INTEGER) =
         BEGIN
           Middle(v);
         END Top;
         VAR r: R; i: INTEGER;
         BEGIN
           r := NEW(R);
           r.v := 0;
           FOR i := 1 TO 15 DO Top(r.v); END;
           PutInt(r.v);
         END M.",
    );
}

/// Interior pointers live across *calls* (the paper's main
/// call-by-reference case: derived values live at exactly one gc-point).
#[test]
fn with_alias_across_calls() {
    torture(
        "MODULE M;
         TYPE A = REF ARRAY [1..6] OF INTEGER;
              R = REF RECORD x: INTEGER END;
         PROCEDURE Alloc(): R =
         BEGIN
           RETURN NEW(R);
         END Alloc;
         VAR a: A; i, s: INTEGER; junk: R;
         BEGIN
           a := NEW(A);
           FOR i := 1 TO 6 DO a[i] := i * 100; END;
           s := 0;
           FOR i := 1 TO 6 DO
             WITH h = a[i] DO
               junk := Alloc();
               junk.x := i;
               s := s + h;
             END;
           END;
           PutInt(s);
         END M.",
    );
}

/// Registers across deep calls: pointers kept in callee-save registers
/// must be reconstructed through multiple save areas.
#[test]
fn register_reconstruction_depth() {
    torture(
        "MODULE M;
         TYPE L = REF RECORD v: INTEGER; next: L END;
         PROCEDURE Deep(n: INTEGER; keep: L): INTEGER =
         VAR mine: L;
         BEGIN
           IF n = 0 THEN RETURN keep.v; END;
           mine := NEW(L);
           mine.v := n;
           mine.next := keep;
           RETURN Deep(n - 1, mine) + keep.v;
         END Deep;
         VAR base: L;
         BEGIN
           base := NEW(L);
           base.v := 1000;
           PutInt(Deep(12, base));
         END M.",
    );
}

/// Global fixed arrays of REF are roots: every element is updated when
/// its referent moves.
#[test]
fn global_ref_array_roots() {
    torture(
        "MODULE M;
         TYPE R = REF RECORD x: INTEGER END;
         VAR slots: ARRAY [1..5] OF R; i, s: INTEGER; junk: R;
         BEGIN
           FOR i := 1 TO 5 DO
             slots[i] := NEW(R);
             slots[i].x := i * 11;
           END;
           FOR i := 1 TO 40 DO
             junk := NEW(R);
             junk.x := i;
           END;
           s := 0;
           FOR i := 1 TO 5 DO s := s + slots[i].x; END;
           PutInt(s);
         END M.",
    );
}

/// Local fixed arrays of REF live in the frame; each element is a separate
/// ground-table entry (§5.2) traced at every gc-point.
#[test]
fn local_ref_array_ground_entries() {
    torture(
        "MODULE M;
         TYPE R = REF RECORD x: INTEGER END;
         PROCEDURE Work(): INTEGER =
         VAR held: ARRAY [0..3] OF R; i, s: INTEGER; junk: R;
         BEGIN
           FOR i := 0 TO 3 DO
             held[i] := NEW(R);
             held[i].x := i + 100;
           END;
           FOR i := 1 TO 30 DO
             junk := NEW(R);
             junk.x := i;
           END;
           s := 0;
           FOR i := 0 TO 3 DO s := s + held[i].x; END;
           RETURN s;
         END Work;
         BEGIN
           PutInt(Work());
         END M.",
    );
}

/// A fixed-array REF used where an open-array REF is expected
/// (assignability), traced correctly through the open-array descriptor.
#[test]
fn fixed_into_open_array_param() {
    torture(
        "MODULE M;
         TYPE Fixed = REF ARRAY [1..4] OF INTEGER;
              Open = REF ARRAY OF INTEGER;
              R = REF RECORD x: INTEGER END;
         PROCEDURE Sum(v: Open): INTEGER =
         VAR i, s: INTEGER; junk: R;
         BEGIN
           s := 0;
           FOR i := 0 TO NUMBER(v) - 1 DO
             junk := NEW(R);
             junk.x := i;
             s := s + v[i];
           END;
           RETURN s;
         END Sum;
         VAR f: Fixed; i: INTEGER;
         BEGIN
           f := NEW(Fixed);
           FOR i := 1 TO 4 DO f[i] := i * 7; END;
           PutInt(Sum(f));
         END M.",
    );
}

/// Nested WITH bindings: two interior pointers into different objects live
/// across the same gc-points.
#[test]
fn nested_with_aliases() {
    torture(
        "MODULE M;
         TYPE A = REF ARRAY [0..5] OF INTEGER;
              R = REF RECORD x: INTEGER END;
         VAR p, q: A; i, s: INTEGER; junk: R;
         BEGIN
           p := NEW(A);
           q := NEW(A);
           FOR i := 0 TO 5 DO p[i] := i; q[i] := i * 10; END;
           s := 0;
           FOR i := 0 TO 5 DO
             WITH hp = p[i] DO
               WITH hq = q[i] DO
                 junk := NEW(R);
                 junk.x := i;
                 s := s + hp + hq;
               END;
             END;
           END;
           PutInt(s);
         END M.",
    );
}
