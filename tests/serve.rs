//! Region-lifetime edge cases for the allocation-service runtime.
//!
//! Every test runs under gc torture (a collection forced at every
//! allocation) with the precision oracle armed, so any region reset
//! that dropped a reachable object — or any gc-map imprecision in the
//! request snapshots — traps instead of silently corrupting.

use m3gc::compiler::{compile, run_module_serve, Options};
use m3gc::runtime::serve::ServeOutcome;
use m3gc::runtime::{RuntimeOptions, ServeLoad};

fn serve(src: &str, opts: RuntimeOptions, requests: u64, burst: usize) -> ServeOutcome {
    let module = compile(src, &Options::o2()).expect("test program compiles");
    let load = ServeLoad { requests, burst, entry: Some("Handle".to_string()) };
    run_module_serve(module, opts, load).expect("serve run completes")
}

/// An object escapes its request's region into a module global, the
/// region is torn down, and the *next* request reads the escapee back:
/// the write-barrier escape check must force promotion instead of the
/// O(1) reset, and the promoted object must survive with its value.
#[test]
fn escape_promote_then_reclaim() {
    // One thread, one green slot: requests run strictly in sequence, so
    // the global handoff and the printed values are deterministic.
    let src = "MODULE Esc;
        TYPE R = REF RECORD id, v: INTEGER END;
        VAR keep: R;
        PROCEDURE Handle(id: INTEGER) =
        VAR junk: R; i: INTEGER;
        BEGIN
          IF keep # NIL THEN PutInt(keep.v); END;
          FOR i := 1 TO 20 DO junk := NEW(R); junk.v := i; END;
          WITH r = NEW(R) DO r.id := id; r.v := id * 3; keep := r; END;
        END Handle;
        BEGIN keep := NIL; END Esc.";
    let opts = RuntimeOptions::new()
        .semi_words(1 << 14)
        .serve(256, 1)
        .threads(1)
        .gc_workers(2)
        .torture(true)
        .oracle(true);
    let out = serve(src, opts, 8, 1);
    // Request k reads request k-1's escapee: 0, 3, 6, … 18.
    assert_eq!(out.outputs.concat(), "0369121518", "wrong escapee values");
    let s = &out.stats;
    assert_eq!(s.requests, 8);
    assert!(s.region_escapes >= 8, "every request escapes, got {}", s.region_escapes);
    assert!(s.regions_zombied > 0, "escaped regions must exit as zombies");
    assert!(s.region_words_promoted > 0, "escapees must be promoted, not reset");
    assert!(s.region_words_reset > 0, "the garbage part of escaped regions must be reclaimed");
}

/// A slow request keeps a live region-local list across the dozens of
/// stop-the-world collections its torture-mode neighbours force: the
/// pinned region must be traced precisely (the list survives, sum
/// intact) while the fast requests' regions come and go around it.
#[test]
fn slow_request_pins_region_across_collections() {
    let src = "MODULE Pin;
        TYPE Node = REF RECORD v: INTEGER; next: Node END;
        PROCEDURE Handle(id: INTEGER) =
        VAR l, t: Node; i, s: INTEGER;
        BEGIN
          IF id = 0 THEN
            l := NIL;
            FOR i := 1 TO 40 DO
              WITH c = NEW(Node) DO c.v := i; c.next := l; l := c; END;
            END;
            s := 0;
            WHILE l # NIL DO s := s + l.v; l := l.next; END;
            PutInt(s);
          ELSE
            FOR i := 1 TO 10 DO t := NEW(Node); t.v := i; END;
          END;
        END Handle;
        BEGIN PutInt(0); END Pin.";
    let opts = RuntimeOptions::new()
        .semi_words(1 << 14)
        .serve(512, 4)
        .threads(2)
        .gc_workers(2)
        .torture(true)
        .oracle(true);
    let out = serve(src, opts, 12, 4);
    let s = &out.stats;
    assert_eq!(s.requests, 12);
    assert!(s.collections > 10, "torture must force many collections, got {}", s.collections);
    // 1 + 2 + … + 40 = 820, printed by the pinned request after its
    // region survived the neighbours' collections.
    assert!(
        out.outputs.iter().any(|o| o.contains("820")),
        "slow request's region-local list was corrupted: outputs {:?}",
        out.outputs
    );
    assert!(
        s.regions_reclaimed_fast == s.regions_created,
        "nothing escapes here — every region must exit via the O(1) reset, got {}/{}",
        s.regions_reclaimed_fast,
        s.regions_created
    );
}

/// Request exits race the stop-the-world handshake: with a collection
/// forced at every allocation, two OS threads and eight green slots,
/// requests constantly finish (tearing their region down) while a
/// handshake is being gathered. The run must complete with every
/// request served and the oracle silent.
#[test]
fn request_exit_races_stw_handshake() {
    let src = "MODULE Race;
        TYPE R = REF RECORD v: INTEGER END;
        PROCEDURE Handle(id: INTEGER) =
        VAR r: R; i: INTEGER;
        BEGIN
          FOR i := 1 TO 3 DO r := NEW(R); r.v := id + i; END;
        END Handle;
        BEGIN PutInt(0); END Race.";
    let opts = RuntimeOptions::new()
        .semi_words(1 << 14)
        .serve(64, 8)
        .threads(2)
        .gc_workers(2)
        .torture(true)
        .oracle(true);
    let out = serve(src, opts, 64, 8);
    let s = &out.stats;
    assert_eq!(s.requests, 64, "every admitted request must complete");
    assert_eq!(s.regions_created, 64);
    assert_eq!(
        s.regions_reclaimed_fast, 64,
        "purely request-local allocation must always take the O(1) reset"
    );
    assert!(s.collections > 0);
}
