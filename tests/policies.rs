//! Gc-point policy tests (§5.3): the interprocedural allocating-only
//! refinement vs the all-calls default, loop gc-points, and scheme
//! orthogonality — policies change table sizes, never semantics.

use m3gc::codegen::{CallPolicy, GcConfig};
use m3gc::compiler::{compile, reference_output, run_module, Options};
use m3gc::core::stats::table_stats;

const SRC: &str = "MODULE P;
TYPE R = REF RECORD v: INTEGER END;
PROCEDURE PureMath(x: INTEGER): INTEGER =
BEGIN
  RETURN (x * 17 + 3) MOD 97;
END PureMath;
PROCEDURE Allocate(v: INTEGER): R =
VAR r: R;
BEGIN
  r := NEW(R);
  r.v := v;
  RETURN r;
END Allocate;
VAR i, s: INTEGER; r: R;
BEGIN
  s := 0;
  FOR i := 1 TO 120 DO
    s := s + PureMath(i);
    r := Allocate(i);
    s := (s + r.v) MOD 1000003;
  END;
  PutInt(s);
END P.";

fn with_policy(calls: CallPolicy, loop_gc_points: bool) -> Options {
    Options::o2().with_gc(GcConfig {
        emit_tables: true,
        calls,
        loop_gc_points,
        ..GcConfig::default()
    })
}

#[test]
fn allocating_only_emits_fewer_gc_points() {
    let all = compile(SRC, &with_policy(CallPolicy::AllCalls, true)).unwrap();
    let refined = compile(SRC, &with_policy(CallPolicy::AllocatingOnly, true)).unwrap();
    let s_all = table_stats(&all.logical_maps);
    let s_ref = table_stats(&refined.logical_maps);
    // Calls to PureMath are gc-points only under AllCalls.
    assert!(
        s_ref.total_gc_points < s_all.total_gc_points,
        "refined {} vs all {}",
        s_ref.total_gc_points,
        s_all.total_gc_points
    );
    // And the refined tables are smaller.
    assert!(refined.gc_maps.bytes.len() < all.gc_maps.bytes.len());
}

#[test]
fn every_policy_preserves_semantics() {
    let expected = reference_output(SRC).unwrap();
    for calls in [CallPolicy::AllCalls, CallPolicy::AllocatingOnly] {
        for loops in [true, false] {
            let module = compile(SRC, &with_policy(calls, loops)).unwrap();
            let out =
                run_module(module, 128).unwrap_or_else(|e| panic!("{calls:?}/loops={loops}: {e}"));
            assert_eq!(out.output, expected, "{calls:?}/loops={loops}");
            assert!(out.collections > 0, "{calls:?}/loops={loops}");
        }
    }
}

#[test]
fn allocating_only_is_sound_single_threaded() {
    // Under the refinement, frames suspended at non-gc-point calls can
    // never be on the stack during a collection: a collection only
    // triggers under an allocating call chain, and every call in such a
    // chain is (transitively) allocating, hence a gc-point. A recursive
    // allocating workload checks this end to end.
    let src = "MODULE S;
        TYPE T = REF RECORD v: INTEGER; next: T END;
        PROCEDURE Chain(n: INTEGER; acc: T): INTEGER =
        VAR c: T;
        BEGIN
          IF n = 0 THEN RETURN Count(acc); END;
          WITH junk = NEW(T) DO junk.v := n; END;
          c := NEW(T);
          c.v := n;
          c.next := acc;
          RETURN Chain(n - 1, c);
        END Chain;
        PROCEDURE Count(t: T): INTEGER =
        VAR n: INTEGER;
        BEGIN
          n := 0;
          WHILE t # NIL DO INC(n); t := t.next; END;
          RETURN n;
        END Count;
        BEGIN
          PutInt(Chain(80, NIL));
        END S.";
    let expected = reference_output(src).unwrap();
    let module = compile(src, &with_policy(CallPolicy::AllocatingOnly, false)).unwrap();
    let out = run_module(module, 384).unwrap();
    assert_eq!(out.output, expected);
    assert!(out.collections > 0);
}

#[test]
fn disabling_loop_gc_points_shrinks_tables() {
    let with_loops = compile(SRC, &with_policy(CallPolicy::AllCalls, true)).unwrap();
    let without = compile(SRC, &with_policy(CallPolicy::AllCalls, false)).unwrap();
    // SRC's FOR loop has a guaranteed gc-point (it allocates every
    // iteration), so counts can tie; use a program with a pure loop.
    let pure = "MODULE Q;
        VAR i, s: INTEGER;
        BEGIN
          s := 0;
          FOR i := 1 TO 10 DO s := s + i; END;
          PutInt(s);
        END Q.";
    let w = compile(pure, &with_policy(CallPolicy::AllCalls, true)).unwrap();
    let wo = compile(pure, &with_policy(CallPolicy::AllCalls, false)).unwrap();
    assert!(
        table_stats(&w.logical_maps).total_gc_points
            > table_stats(&wo.logical_maps).total_gc_points
    );
    let _ = (with_loops, without);
}
