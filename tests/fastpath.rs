//! Allocation and root-scan fast paths: acceptance tests.
//!
//! * TLAB protocol invariants, driven directly against [`ParMachine`]:
//!   refills land exactly at the buffer boundary (an aligned buffer
//!   retires with zero waste), oversized objects bypass the buffer
//!   without disturbing it, and retirement accounts for every word the
//!   shared frontier has moved past — no dead words go missing.
//! * Stack watermarks stay sound across collector transitions: a
//!   generational run that escalates minor → major must splice on warm
//!   minors, never on majors, and still produce semispace-identical
//!   output with splice verification armed; a parallel torture run must
//!   splice across handshakes with the precision oracle on.

use m3gc::compiler::{compile, run_module, run_module_par_opts, Options};
use m3gc::core::heap::{HeapType, TypeId};
use m3gc::runtime::{Executor, GcStrategy, RuntimeOptions};
use m3gc::vm::machine::{HeapStrategy, Machine, MachineLayout};
use m3gc::vm::par::ParLayout;
use m3gc::vm::ParMachine;

/// A module whose type table holds a 4-word record (header + 3 fields)
/// and an open integer array, for driving `try_alloc` directly.
const TYPES_SRC: &str = "MODULE T;
TYPE R = REF RECORD a, b, c: INTEGER END;
     A = REF ARRAY OF INTEGER;
VAR r: R; x: A;
BEGIN
  r := NEW(R);
  x := NEW(A, 2);
  PutInt(r.a + x[0]);
END T.";

/// Finds the type id of the 4-word record in [`TYPES_SRC`].
fn record4_type(vm: &ParMachine) -> u16 {
    (0..vm.module.types.len())
        .find(|&i| {
            let t = vm.module.types.get(TypeId(i as u32));
            matches!(t, HeapType::Record { .. }) && t.object_words(0) == 4
        })
        .expect("4-word record type") as u16
}

/// Finds the open integer array's type id in [`TYPES_SRC`].
fn int_array_type(vm: &ParMachine) -> u16 {
    (0..vm.module.types.len())
        .find(|&i| matches!(vm.module.types.get(TypeId(i as u32)), HeapType::Array { .. }))
        .expect("array type") as u16
}

fn tiny_par_machine(semi_words: usize, tlab_words: usize) -> ParMachine {
    let module = compile(TYPES_SRC, &Options::o2()).expect("compiles");
    ParMachine::new(
        module,
        ParLayout { semi_words, stack_words: 1 << 12, mutators: 1, tlab_words, region_words: 0 },
    )
}

const REL: std::sync::atomic::Ordering = std::sync::atomic::Ordering::Relaxed;

#[test]
fn tlab_refills_exactly_at_alloc_limit_with_zero_waste() {
    // 4-word records into 16-word TLABs carved from a 64-word space:
    // every buffer fills exactly, so 16 allocations take exactly 4
    // shared-frontier CASes and retire nothing.
    let vm = tiny_par_machine(64, 16);
    let main = vm.module.main;
    let mut mu = vm.spawn_mutator(0, main, &[]);
    let ty = record4_type(&vm);
    let (from_start, _) = vm.from_space();

    let mut addrs = Vec::new();
    for i in 0..16 {
        let a = vm
            .try_alloc(&mut mu, ty, 0)
            .expect("no trap")
            .unwrap_or_else(|| panic!("allocation {i} must fit"));
        addrs.push(a);
    }
    // Bump allocation straight through the buffer boundaries: contiguous
    // addresses, no holes.
    for (i, w) in addrs.windows(2).enumerate() {
        assert_eq!(w[1], w[0] + 4, "allocation {} not contiguous", i + 1);
    }
    assert_eq!(addrs[0], from_start);
    assert_eq!(vm.tlab_refills.load(REL), 4, "16 x 4 words = exactly 4 x 16-word refills");
    assert_eq!(vm.free.load(REL), from_start + 64, "frontier at the space end");

    // The space is exhausted: the next allocation must report "needs gc",
    // not trap and not succeed.
    assert_eq!(vm.try_alloc(&mut mu, ty, 0).expect("no trap"), None);

    vm.retire_tlab(&mut mu);
    assert_eq!(vm.tlab_waste_words.load(REL), 0, "aligned buffers retire with zero waste");
    assert_eq!(vm.allocations.load(REL), 16);
    assert_eq!(vm.words_allocated.load(REL), 64);
    assert_eq!(vm.tlab_allocs.load(REL), 12, "3 of every 4 allocations skip the CAS");
}

#[test]
fn oversized_allocation_bypasses_the_tlab() {
    let vm = tiny_par_machine(256, 8);
    let main = vm.module.main;
    let mut mu = vm.spawn_mutator(0, main, &[]);
    let rec = record4_type(&vm);
    let arr = int_array_type(&vm);

    // Fill half a TLAB so there is a live buffer to disturb.
    vm.try_alloc(&mut mu, rec, 0).expect("no trap").expect("fits");
    let (ptr, limit) = (mu.tlab_ptr, mu.tlab_limit);
    assert_eq!(limit - ptr, 4, "half the 8-word buffer remains");
    let refills = vm.tlab_refills.load(REL);

    // A 2+30-word array exceeds tlab_words: straight to the shared
    // frontier, buffer untouched, no refill recorded.
    let big = vm.try_alloc(&mut mu, arr, 30).expect("no trap").expect("fits");
    assert!(big >= limit, "oversized object must come from beyond the live buffer");
    assert_eq!((mu.tlab_ptr, mu.tlab_limit), (ptr, limit), "buffer must be untouched");
    assert_eq!(vm.tlab_refills.load(REL), refills, "oversized path must not refill");

    // The next small allocation still bump-allocates from the old buffer.
    let small = vm.try_alloc(&mut mu, rec, 0).expect("no trap").expect("fits");
    assert_eq!(small, ptr, "small allocation resumes inside the buffer");
}

#[test]
fn retire_accounts_for_every_frontier_word() {
    let vm = tiny_par_machine(256, 16);
    let main = vm.module.main;
    let mut mu = vm.spawn_mutator(0, main, &[]);
    let ty = record4_type(&vm);
    let (from_start, _) = vm.from_space();

    // Three 4-word records leave a 4-word tail in the 16-word buffer.
    for _ in 0..3 {
        vm.try_alloc(&mut mu, ty, 0).expect("no trap").expect("fits");
    }
    vm.retire_tlab(&mut mu);
    assert_eq!(vm.tlab_waste_words.load(REL), 4, "the partial tail is accounted as waste");
    assert_eq!(vm.words_allocated.load(REL), 12);
    // Every word the shared frontier moved past is either an allocated
    // object or recorded waste — nothing leaks.
    let moved = (vm.free.load(REL) - from_start) as u64;
    assert_eq!(moved, vm.words_allocated.load(REL) + vm.tlab_waste_words.load(REL));
    // A retired mutator holds no buffer; the next allocation refills.
    assert_eq!((mu.tlab_ptr, mu.tlab_limit), (0, 0));
    let refills = vm.tlab_refills.load(REL);
    vm.try_alloc(&mut mu, ty, 0).expect("no trap").expect("fits");
    assert_eq!(vm.tlab_refills.load(REL), refills + 1);
}

/// Deep recursion pinning a live cell per frame, a bottom churn loop
/// driving warm minors, and two rounds of live-list growth forcing
/// promotion pressure until minors escalate to majors.
const ESCALATION_SRC: &str = "MODULE Esc;
TYPE L = REF RECORD v: INTEGER; next: L END;
VAR keep: L;

PROCEDURE Churn(rounds: INTEGER): INTEGER =
VAR t: L; i, s: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO rounds DO
    t := NEW(L);
    t.v := i;
    s := (s + t.v) MOD 1000003;
  END;
  RETURN s;
END Churn;

PROCEDURE Deep(d: INTEGER): INTEGER =
VAR c: L;
BEGIN
  c := NEW(L);
  c.v := d;
  IF d > 0 THEN
    RETURN (c.v + Deep(d - 1)) MOD 1000003;
  END;
  RETURN (c.v + Churn(2000)) MOD 1000003;
END Deep;

PROCEDURE Grow(n: INTEGER): INTEGER =
VAR i: INTEGER;
BEGIN
  FOR i := 1 TO n DO
    WITH c = NEW(L) DO c.v := i; c.next := keep; keep := c; END;
  END;
  RETURN keep.v;
END Grow;

VAR r, s: INTEGER;

BEGIN
  PutInt(Deep(60));
  (* Each round's list lives past the promotion age, then dies — but the
     promoted copies pile up in tenured space until a major collection
     cleans them out, so enough rounds force minor -> major escalation. *)
  s := 0;
  FOR r := 1 TO 6 DO
    keep := NIL;
    s := (s + Grow(200)) MOD 1000003;
  END;
  PutInt(s);
END Esc.";

#[test]
fn watermarks_survive_minor_major_escalation() {
    let module = compile(ESCALATION_SRC, &Options::o2()).expect("compiles");
    let semi = 2048;
    let reference = run_module(module.clone(), semi).expect("semispace reference");

    let heap = match HeapStrategy::generational_for(semi) {
        HeapStrategy::Generational { promote_age, .. } => {
            HeapStrategy::Generational { nursery_words: 128, promote_age }
        }
        HeapStrategy::Semispace => unreachable!(),
    };
    let mut machine = Machine::new(
        module,
        MachineLayout { semi_words: semi, stack_words: 1 << 14, max_threads: 4, heap },
    );
    // Shadow + oracle arm splice verification: every cached walk is
    // shadowed by a full rescan and must agree bit-for-bit.
    machine.enable_shadow();
    let mut ex = Executor::new(machine, RuntimeOptions::new().oracle(true));
    let out = ex.run_main().expect("generational run");

    assert_eq!(out.output, reference.output, "watermarks must not perturb semantics");
    assert!(out.minor_collections >= 5, "workload must drive minors, got {out:?}");
    assert!(out.major_collections >= 1, "workload must escalate to majors, got {out:?}");
    assert!(out.gc_total.frames_spliced > 0, "warm minors must splice cold frames");
    for (i, gc) in out.gc_each.iter().enumerate() {
        if gc.kind == m3gc::core::stats::GcKind::Major {
            assert_eq!(gc.frames_spliced, 0, "collection {i}: majors always rescan in full");
        }
    }
}

/// Per-mutator deep recursion plus bottom churn: parallel torture
/// collections repeatedly walk the same cold suffix across handshakes.
const PAR_DEEP_SRC: &str = "MODULE ParWm;
TYPE Cell = REF RECORD v: INTEGER END;

PROCEDURE Deep(d: INTEGER): INTEGER =
VAR c: Cell; i, s: INTEGER;
BEGIN
  c := NEW(Cell);
  c.v := d;
  IF d > 0 THEN
    RETURN (c.v + Deep(d - 1)) MOD 1000003;
  END;
  s := 0;
  FOR i := 1 TO 150 DO
    WITH t = NEW(Cell) DO t.v := i; s := (s + t.v) MOD 1000003; END;
  END;
  RETURN (s + c.v) MOD 1000003;
END Deep;

BEGIN
  PutInt(Deep(40));
END ParWm.";

#[test]
fn watermarks_splice_across_parallel_handshakes() {
    let module = compile(PAR_DEEP_SRC, &Options::o2()).expect("compiles");
    let reference = run_module(module.clone(), 1 << 14).expect("semispace reference");

    // 2 OS-thread mutators under torture with shadow + oracle: every
    // collection verifies each spliced walk against a full rescan and
    // every root against the shadow ground truth.
    let opts = RuntimeOptions::new()
        .strategy(GcStrategy::Parallel)
        .semi_words(1 << 14)
        .stack_words(1 << 13)
        .threads(2)
        .tlab_words(8)
        .gc_workers(2)
        .torture(true)
        .oracle(true);
    let out = run_module_par_opts(module, opts).expect("parallel run");
    for (tid, o) in out.outputs.iter().enumerate() {
        assert_eq!(o, &reference.output, "mutator {tid} diverged");
    }
    let spliced: u64 = out.gc_each.iter().map(|g| g.frames_spliced).sum();
    let traced: u64 = out.gc_each.iter().map(|g| g.frames_traced).sum();
    assert!(spliced > 0, "torture at the bottom of Deep must splice cold frames");
    assert!(spliced < traced, "the hot frame is always rescanned");
}
