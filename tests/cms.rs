//! Concurrent SATB marking: end-to-end acceptance tests.
//!
//! * A 4-mutator `--gc cms` gc-torture run (collection forced at every
//!   allocation, shadow mode + precision oracle armed, every cycle
//!   shadow-verified against the stop-the-world reachable set) must
//!   produce per-thread output identical to the single-threaded
//!   semispace baseline.
//! * The 3/4-occupancy trigger must start cycles on its own — no
//!   torture, no explicit request — and every collection must be a cms
//!   cycle with both pauses accounted.
//! * SATB mutation tests: a deliberately broken deletion barrier — the
//!   old-value enqueue dropped, or reordered after the store so it reads
//!   the *new* value — must be caught by the cycle's shadow
//!   verification as an [`ExecError::Oracle`], using a deterministic
//!   lost-object reproducer (store-then-unlink during marking). The
//!   same program with the barrier intact must run clean and enqueue.

use std::sync::atomic::Ordering;

use m3gc::compiler::{compile, run_module_par_opts, run_module_with, Options};
use m3gc::runtime::scheduler::ExecError;
use m3gc::runtime::{GcStrategy, ParExecutor, RuntimeOptions};
use m3gc::vm::{EvacFault, SatbFault, VmTrap};

/// Allocation-heavy program whose mutable state is all procedure-local
/// (globals are shared between mutators, so a deterministic
/// multi-mutator program must not touch them).
const LOCAL_CHURN: &str = "MODULE Churn;
TYPE Node = REF RECORD v: INTEGER; next: Node END;

PROCEDURE Work(): INTEGER =
VAR head: Node; i, j, s: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO 40 DO
    head := NIL;
    FOR j := 1 TO 12 DO
      WITH c = NEW(Node) DO c.v := j; c.next := head; head := c; END;
    END;
    WHILE head # NIL DO
      s := (s * 31 + head.v) MOD 1000003;
      head := head.next;
    END;
  END;
  RETURN s;
END Work;

BEGIN
  PutInt(Work());
END Churn.";

fn cms_options() -> RuntimeOptions {
    RuntimeOptions::new()
        .strategy(GcStrategy::Cms)
        .semi_words(1 << 15)
        .gc_workers(4)
        .conc_workers(2)
        .shadow(true)
        .oracle(true)
}

#[test]
fn four_mutator_cms_torture_matches_single_thread_baseline() {
    let module = compile(LOCAL_CHURN, &Options::o2()).expect("compiles");

    let baseline = run_module_with(module.clone(), 1 << 14, RuntimeOptions::new().torture(true))
        .expect("baseline run");
    assert!(baseline.collections >= 100, "torture must collect constantly");

    // 4 OS-thread mutators under torture: every allocation forces a
    // pause, so the run alternates snapshot and final pauses as fast as
    // the handshake allows, with the oracle checking gc-map precision
    // at both and the shadow verifier re-deriving the reachable set
    // before every evacuation.
    let out = run_module_par_opts(module, cms_options().threads(4).torture(true))
        .expect("cms torture run");
    assert_eq!(out.outputs.len(), 4);
    for (tid, thread_out) in out.outputs.iter().enumerate() {
        assert_eq!(thread_out, &baseline.output, "mutator {tid} diverged from baseline");
    }
    assert!(out.collections > 0, "cms torture must complete cycles");
    assert_eq!(out.gc_each.len() as u64, out.collections);
    for (i, gc) in out.gc_each.iter().enumerate() {
        assert!(gc.cms_cycle, "collection {i} must be a cms cycle");
        assert!(gc.snapshot_pause.as_nanos() > 0, "cycle {i} records its snapshot pause");
        assert_eq!(
            gc.per_worker_words.iter().sum::<u64>(),
            gc.words_copied,
            "cycle {i}: per-worker words must account for the total"
        );
        assert!(gc.steals.iter().all(|&s| s == 0), "bitmap evacuation never steals");
    }
    assert_eq!(
        out.satb_drained,
        out.gc_each.iter().map(|g| g.satb_drained).sum::<u64>(),
        "every drained SATB entry is attributed to a cycle"
    );
}

#[test]
fn occupancy_trigger_runs_cycles_without_torture() {
    let module = compile(LOCAL_CHURN, &Options::o2()).expect("compiles");
    let baseline =
        run_module_with(module.clone(), 1 << 14, RuntimeOptions::new()).expect("baseline");

    // Small heap, no torture: cycles start from the 3/4-occupancy
    // trigger alone.
    let opts = cms_options().semi_words(1 << 12).threads(2);
    let out = run_module_par_opts(module, opts).expect("cms run");
    for thread_out in &out.outputs {
        assert_eq!(thread_out, &baseline.output);
    }
    assert!(out.collections > 0, "a 4K-word heap must fill at 3/4 and cycle");
    assert!(out.gc_each.iter().all(|g| g.cms_cycle));
}

/// A slot killed *during* concurrent marking must not resurrect its old
/// value through the SATB deletion barrier. Each `Q` invocation puts
/// `b` in a frame slot (it is passed VAR); `b` dies after `s := b.v`,
/// so the churn loop's pauses null it — enqueuing the old value first,
/// per the start-of-cycle snapshot. When the frame is later reused, a
/// store over the slot hits the deletion barrier on the *nulled* word,
/// not a stale from-space pointer. A kill that skipped the enqueue or
/// the null would either lose a snapshot-reachable object or feed the
/// barrier a dangling pointer — both caught by the per-cycle shadow
/// verification and the torture run's output check.
const KILLED_SLOT_CHURN: &str = "MODULE CmsKill;
TYPE R = REF RECORD v: INTEGER END;

PROCEDURE Fill(VAR r: R; n: INTEGER) =
BEGIN r := NEW(R); r.v := n; END Fill;

PROCEDURE Q(n: INTEGER): INTEGER =
VAR b: R; s, j: INTEGER;
BEGIN
  Fill(b, n);
  s := b.v;
  FOR j := 1 TO 4 DO
    WITH d = NEW(R) DO d.v := j; s := s + d.v; END;
  END;
  RETURN s;
END Q;

PROCEDURE Work(): INTEGER =
VAR s, i: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO 30 DO
    s := (s + Q(i)) MOD 1000003;
  END;
  RETURN s;
END Work;

BEGIN
  PutInt(Work());
END CmsKill.";

#[test]
fn killed_slot_during_marking_does_not_resurrect() {
    let module = compile(KILLED_SLOT_CHURN, &Options::o2()).expect("compiles");
    let baseline = run_module_with(module.clone(), 1 << 14, RuntimeOptions::new().torture(true))
        .expect("baseline run");

    let out = run_module_par_opts(module, cms_options().threads(2).torture(true))
        .expect("cms torture run with killed slots");
    for (tid, thread_out) in out.outputs.iter().enumerate() {
        assert_eq!(thread_out, &baseline.output, "mutator {tid} diverged from baseline");
    }
    assert!(out.gc_each.iter().all(|g| g.cms_cycle));
    let killed: u64 = out.gc_each.iter().map(|g| g.roots_killed).sum();
    assert!(killed > 0, "the dead slot must be killed across the cms cycles");
}

/// Deterministic lost-object reproducer. Under `--gc cms` torture with
/// a collection forced at *every* allocation and `hold_marking` set
/// (markers idle, so only the snapshot seed and the final-pause SATB
/// drain mark anything), the two allocations per iteration make the
/// pauses alternate: `cur := NEW` leads the final pause, `b := NEW`
/// leads the snapshot pause — so marking spans the tail of each
/// iteration. There, iteration `i` loads the node its *previous*
/// iteration linked behind `prev` — unmarked at the snapshot,
/// reachable only through `prev.next` — into `t`, then unlinks it
/// (`prev.next := NIL`). The intact deletion barrier
/// enqueues the old value and the final drain marks it; a dropped or
/// reordered enqueue loses it while `t` still roots it, and the
/// cycle's shadow verification must report the violation.
const SATB_VICTIM: &str = "MODULE SatbVictim;
TYPE Node = REF RECORD v: INTEGER; next: Node END;

PROCEDURE Work(): INTEGER =
VAR prev, cur, b, t: Node; i, s: INTEGER;
BEGIN
  s := 0;
  prev := NEW(Node);
  b := NEW(Node);
  b.v := 0;
  prev.next := b;
  t := b;
  b := NIL;
  FOR i := 1 TO 40 DO
    cur := NEW(Node);
    b := NEW(Node);
    b.v := i;
    cur.next := b;
    b := NIL;
    s := (s + t.v) MOD 1000003;
    t := prev.next;
    prev.next := NIL;
    prev := cur;
  END;
  RETURN s;
END Work;

BEGIN
  PutInt(Work());
END SatbVictim.";

fn run_victim(fault: SatbFault) -> (Result<String, ExecError>, u64) {
    let module = compile(SATB_VICTIM, &Options::o2()).expect("compiles");
    let options =
        cms_options().semi_words(1 << 14).threads(1).gc_workers(2).force_every_allocs(Some(1));
    let vm = options.build_par_machine(module);
    {
        let cms = vm.cms.as_ref().expect("cms strategy arms the cms heap");
        cms.set_fault(fault);
        // Keep the concurrent markers out of the picture: marking must
        // rely entirely on the snapshot seed and the SATB drain, so a
        // broken barrier cannot be papered over by a lucky trace.
        cms.hold_marking.store(true, Ordering::Relaxed);
    }
    let mut ex = ParExecutor::new(vm, options);
    match ex.run_main() {
        Ok(out) => (Ok(out.output), out.satb_enqueued),
        Err(e) => (Err(e), 0),
    }
}

#[test]
fn intact_satb_barrier_runs_clean_and_enqueues() {
    let module = compile(SATB_VICTIM, &Options::o2()).expect("compiles");
    let baseline = run_module_with(module, 1 << 14, RuntimeOptions::new()).expect("baseline run");
    let (result, enqueued) = run_victim(SatbFault::None);
    assert_eq!(result.expect("intact barrier must pass the oracle"), baseline.output);
    assert!(enqueued > 0, "the reproducer must exercise the deletion barrier");
}

#[test]
fn dropped_satb_enqueue_is_caught_by_shadow_verification() {
    match run_victim(SatbFault::Drop) {
        (Err(ExecError::Oracle(msg)), _) => {
            assert!(msg.contains("unmarked"), "diagnostic names the lost object: {msg}");
        }
        (other, _) => panic!("dropped enqueue must fail shadow verification, got {other:?}"),
    }
}

#[test]
fn reordered_satb_enqueue_is_caught_by_shadow_verification() {
    // Store-then-load reads the *new* value — for the unlink that is
    // NIL, which the barrier filters, so the old value is lost exactly
    // as with a dropped enqueue.
    match run_victim(SatbFault::Reorder) {
        (Err(ExecError::Oracle(_)), _) => {}
        (other, _) => panic!("reordered enqueue must fail shadow verification, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Concurrent evacuation.
// ---------------------------------------------------------------------

/// Tiny-region conc-evac options: with 16-word regions every live chunk
/// of the heap lands in its own region, so each cycle's cset covers
/// essentially the whole live set and the self-healing load/store paths
/// are exercised on every object.
fn evac_options() -> RuntimeOptions {
    cms_options().conc_evac(true).evac_region_words(16)
}

#[test]
fn four_mutator_conc_evac_tiny_region_torture_matches_baseline() {
    let module = compile(LOCAL_CHURN, &Options::o2()).expect("compiles");
    let baseline = run_module_with(module.clone(), 1 << 14, RuntimeOptions::new().torture(true))
        .expect("baseline run");

    // 4 OS-thread mutators, collection forced at every allocation,
    // shadow + oracle armed, every region a cset candidate: forced
    // pauses constantly interrupt concurrent copies mid-flight, so the
    // pause-side frontier flush and the forwarding audit both run hot.
    let out = run_module_par_opts(module, evac_options().threads(4).torture(true))
        .expect("conc-evac torture run");
    assert_eq!(out.outputs.len(), 4);
    for (tid, thread_out) in out.outputs.iter().enumerate() {
        assert_eq!(thread_out, &baseline.output, "mutator {tid} diverged from baseline");
    }
    assert!(out.collections > 0, "conc-evac torture must complete cycles");
    assert!(out.gc_each.iter().all(|g| g.cms_cycle));
}

/// Two-phase reproducer for the forwarding hazards: `Build` makes a
/// small live chain, `Fill` churns past the occupancy trigger, and the
/// allocation-free `Walk` then reads and writes the chain for long
/// enough that marking, evacuation select and the concurrent copy all
/// complete underneath it. With `hold_evac` set the evacuation window
/// stays open to program exit, so every late `Walk` access runs against
/// published copies and the exit audit stands in for the final pause's.
const EVAC_VICTIM: &str = "MODULE EvacVictim;
TYPE Node = REF RECORD v: INTEGER; next: Node END;

PROCEDURE Build(n: INTEGER): Node =
VAR head, t: Node; i: INTEGER;
BEGIN
  head := NIL;
  FOR i := 1 TO n DO
    t := NEW(Node);
    t.v := i;
    t.next := head;
    head := t;
  END;
  RETURN head;
END Build;

PROCEDURE Fill(rounds: INTEGER): INTEGER =
VAR t: Node; i, s: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO rounds DO
    t := NEW(Node);
    t.v := i;
    s := (s + t.v) MOD 1000003;
  END;
  RETURN s;
END Fill;

PROCEDURE Walk(head: Node; rounds: INTEGER): INTEGER =
VAR p: Node; i, s: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO rounds DO
    p := head;
    WHILE p # NIL DO
      p.v := p.v + 1;
      s := (s + p.v) MOD 1000003;
      p := p.next;
    END;
  END;
  RETURN s;
END Walk;

PROCEDURE Work(): INTEGER =
VAR head: Node; s: INTEGER;
BEGIN
  head := Build(64);
  s := Fill(1000);
  RETURN (s + Walk(head, 20000)) MOD 1000003;
END Work;

BEGIN
  PutInt(Work());
END EvacVictim.";

fn run_evac_victim(fault: EvacFault) -> Result<m3gc::runtime::parallel::ParOutcome, ExecError> {
    let module = compile(EVAC_VICTIM, &Options::o2()).expect("compiles");
    // No TLABs: retirement waste would push the frontier past the heap
    // end during `Fill` and force a mutator-led one-pause evacuation
    // before the coordinator ever reaches the select handshake.
    let options = evac_options().semi_words(1 << 12).threads(1).gc_workers(2).tlab_words(0);
    let vm = options.build_par_machine(module);
    {
        let cms = vm.cms.as_ref().expect("cms strategy arms the cms heap");
        cms.set_evac_fault(fault);
        // Hold the evacuation window open to program exit: the final
        // pause never runs, so a surviving hazard cannot be papered
        // over by the pause-time rewrite — only the self-healing
        // mutator paths and the exit audit stand between the fault and
        // the program.
        cms.hold_evac.store(true, Ordering::Relaxed);
    }
    let mut ex = ParExecutor::new(vm, options);
    ex.run_main()
}

#[test]
fn intact_conc_evac_runs_clean_and_moves_objects() {
    let module = compile(EVAC_VICTIM, &Options::o2()).expect("compiles");
    let baseline = run_module_with(module, 1 << 14, RuntimeOptions::new()).expect("baseline run");
    let out = run_evac_victim(EvacFault::None).expect("intact forwarding must pass the audit");
    assert_eq!(out.output, baseline.output, "healed walk diverged from baseline");
    assert!(out.evac_objects > 0, "the walk must run against concurrently moved objects");
}

#[test]
fn stale_read_is_trapped_by_the_shadow_oracle() {
    // Healing faulted off: loads keep landing on published originals,
    // which the shadow run traps as a stale pointer the moment the walk
    // touches a moved node.
    match run_evac_victim(EvacFault::StaleRead) {
        Err(ExecError::Trap(VmTrap::StalePointer)) => {}
        other => panic!("stale reads must trap as StalePointer, got {other:?}"),
    }
}

#[test]
fn torn_forward_store_is_caught_by_the_evac_audit() {
    // The store-side redirect and post-store recheck are skipped, so a
    // mutator store lands only in the original after its copy is
    // published: the copy silently diverges, which the audit flags as a
    // torn store (divergent word with no healed-dirty bit).
    match run_evac_victim(EvacFault::TornForward) {
        Err(ExecError::Oracle(msg)) => {
            assert!(msg.contains("torn"), "diagnostic names the torn store: {msg}");
        }
        other => panic!("torn forwarding stores must fail the audit, got {other:?}"),
    }
}

#[test]
fn double_copy_is_caught_by_the_evac_audit() {
    // The claim CAS is skipped and the copy published twice: to-space
    // coverage no longer accounts for every cset object exactly once,
    // which the audit reports as a lost/duplicated publish.
    match run_evac_victim(EvacFault::DoubleCopy) {
        Err(ExecError::Oracle(_)) => {}
        other => panic!("double copies must fail the audit, got {other:?}"),
    }
}
