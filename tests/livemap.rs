//! Liveness-driven gc-maps: end-to-end acceptance and mutation tests.
//!
//! The pruned maps make a two-sided claim at every gc-point: the
//! `live_stack` entries are the *only* slots the collector must trace,
//! and the `killed` entries are frame words whose references are dead —
//! dead enough that the collector may null them. Both sides must be
//! verifiable, so both directions of lying are tested:
//!
//! * **Over-aggressive** (a live slot demoted to `killed`): the
//!   collector nulls a root the program still reads, which under
//!   gc-torture becomes a NIL trap or an output divergence from the
//!   reference interpreter.
//! * **Under-aggressive / self-contradictory** (a slot listed both
//!   live and killed): the precision oracle rejects the table before
//!   anything moves — a killed entry that still shows up as a tidy
//!   root is a root the collector would null *and* trace.
//!
//! A clean run must kill dead roots (`roots_killed > 0`), produce the
//! reference output, and agree byte-for-byte with a `--no-live-maps`
//! build of the same program.

use m3gc::compiler::{compile, reference_output, run_module_opts, Options};
use m3gc::core::encode::encode_module;
use m3gc::core::tables::ModuleTables;
use m3gc::runtime::{Executor, RuntimeOptions};

/// Two frame slots with staggered lifetimes: `a` and `b` live in slots
/// (both are passed VAR), `b` dies right after `s := b.v`, while `a`
/// stays live across every loop gc-point until the final `a.v` read.
/// Liveness-pruned maps must kill `b` in the loop and must *not* kill
/// `a` anywhere.
const SRC: &str = "MODULE M;
     TYPE R = REF RECORD v: INTEGER END;
     PROCEDURE Fill(VAR r: R; n: INTEGER) =
     BEGIN r := NEW(R); r.v := n; END Fill;
     PROCEDURE P() =
     VAR a, b: R; s, i: INTEGER;
     BEGIN
       Fill(a, 100);
       Fill(b, 10);
       s := b.v;
       FOR i := 1 TO 20 DO
         WITH d = NEW(R) DO d.v := i; s := s + d.v; END;
       END;
       PutInt(s + a.v);
     END P;
     BEGIN P(); END M.";

fn torture_options() -> RuntimeOptions {
    RuntimeOptions::new()
        .semi_words(1 << 12)
        .stack_words(1 << 14)
        .max_threads(4)
        .torture(true)
        .oracle(true)
}

/// Compiles `SRC` at -O2 (liveness pruning on by default), corrupts the
/// logical tables with `mutate` (which must report how many sites it
/// hit), re-encodes them, and runs under torture with shadow mode and
/// the oracle armed.
fn run_mutated(mutate: impl Fn(&mut ModuleTables) -> usize) -> Result<String, String> {
    let opts = Options::o2();
    let mut module = compile(SRC, &opts).expect("compile");
    let hits = mutate(&mut module.logical_maps);
    assert!(hits > 0, "mutation found no site to corrupt — not a real test");
    module.gc_maps = encode_module(&module.logical_maps, opts.codegen.scheme);
    let ropts = torture_options();
    let machine = ropts.build_machine(module);
    let mut ex = Executor::try_new(machine, ropts).map_err(|e| e.to_string())?;
    ex.run_main().map(|out| out.output).map_err(|e| e.to_string())
}

#[test]
fn untouched_live_maps_run_clean_and_kill_dead_roots() {
    let expected = reference_output(SRC).expect("reference");

    let module = compile(SRC, &Options::o2()).expect("compile");
    let out = run_module_opts(module, torture_options()).expect("pruned run");
    assert_eq!(out.output, expected);
    assert!(
        out.gc_total.roots_killed > 0,
        "liveness pruning must kill the dead slot at the loop gc-points"
    );
    assert!(
        out.gc_total.float_words_avoided > 0,
        "the killed slot referenced a live object — its words are avoided float"
    );

    // The same program with pruning disabled: identical output, no
    // kills — the pruning is invisible to the program either way.
    let mut full_opts = Options::o2();
    full_opts.codegen.gc.live_maps = false;
    let module = compile(SRC, &full_opts).expect("compile full maps");
    let full = run_module_opts(module, torture_options()).expect("full-map run");
    assert_eq!(full.output, expected);
    assert_eq!(full.gc_total.roots_killed, 0, "full maps must not kill anything");
}

#[test]
fn over_aggressive_kill_is_caught() {
    // Demote every live stack entry to killed: the collector nulls
    // roots the program still needs (`a` among them), so the run must
    // trap or diverge from the reference output.
    let expected = reference_output(SRC).expect("reference");
    let result = run_mutated(|tables| {
        let mut hits = 0;
        for proc in &mut tables.procs {
            for point in &mut proc.points {
                hits += point.live_stack.len();
                point.killed.append(&mut point.live_stack);
                point.killed.sort_unstable();
                point.killed.dedup();
            }
        }
        hits
    });
    match result {
        Err(e) => eprintln!("over-aggressive kill: caught with error: {e}"),
        Ok(out) => {
            assert_ne!(
                out, expected,
                "nulling live roots produced the correct output — mutation not caught"
            );
            eprintln!("over-aggressive kill: caught as output divergence");
        }
    }
}

#[test]
fn retained_killed_slot_is_caught_by_oracle() {
    // Re-list every killed entry as live without removing the kill: a
    // self-contradictory table (the collector would null a root it is
    // also told to trace). The oracle's disjointness check must reject
    // it at the first collection that decodes such a point — before
    // anything moves, so the catch is deterministic.
    let err = run_mutated(|tables| {
        let mut hits = 0;
        for proc in &mut tables.procs {
            for point in &mut proc.points {
                if point.killed.is_empty() {
                    continue;
                }
                hits += point.killed.len();
                point.live_stack.extend_from_slice(&point.killed);
                point.live_stack.sort_unstable();
                point.live_stack.dedup();
            }
        }
        hits
    })
    .expect_err("a slot listed both live and killed must fail the oracle");
    assert!(err.contains("killed slot"), "diagnostic names the contradictory entry: {err}");
}
