//! Parallel stop-the-world collection: end-to-end acceptance tests.
//!
//! * A 4-mutator gc-torture run (collection at every allocation, shadow
//!   mode + precision oracle armed) must produce per-thread output
//!   identical to the single-threaded semispace baseline — the parallel
//!   handshake, snapshot stack walks, work-stealing copy and two-phase
//!   derived-value update may not perturb program semantics.
//! * Loop back-edge gc-points are what bound the safepoint handshake
//!   (§5.3): every explicit poll site must also be a gc-point with a
//!   table entry.
//! * A mutator that *cannot* reach a gc-point within the advance budget
//!   (loop gc-points compiled out) must surface a structured
//!   [`ExecError::StuckThread`], never hang — on both the cooperative
//!   scheduler and the OS-thread parallel runtime.

use m3gc::compiler::{compile, run_module_par, run_module_with, Options};
use m3gc::runtime::scheduler::{ExecError, Executor};
use m3gc::runtime::RuntimeOptions;
use m3gc::vm::machine::{Machine, MachineLayout};
use m3gc::vm::{ParLayout, ParMachine};

/// Allocation-heavy program whose mutable state is all procedure-local:
/// module globals are shared between parallel mutators, so a
/// deterministic multi-mutator program must not touch them.
const LOCAL_CHURN: &str = "MODULE Churn;
TYPE Node = REF RECORD v: INTEGER; next: Node END;

PROCEDURE Work(): INTEGER =
VAR head: Node; i, j, s: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO 40 DO
    head := NIL;
    FOR j := 1 TO 12 DO
      WITH c = NEW(Node) DO c.v := j; c.next := head; head := c; END;
    END;
    WHILE head # NIL DO
      s := (s * 31 + head.v) MOD 1000003;
      head := head.next;
    END;
  END;
  RETURN s;
END Work;

BEGIN
  PutInt(Work());
END Churn.";

#[test]
fn four_mutator_torture_matches_single_thread_baseline() {
    let opts = Options::o2();
    let module = compile(LOCAL_CHURN, &opts).expect("compiles");

    // Single-threaded semispace baseline, also under torture.
    let baseline = run_module_with(module.clone(), 1 << 14, RuntimeOptions::new().torture(true))
        .expect("baseline run");
    assert!(baseline.collections >= 100, "torture must collect constantly");

    // 4 OS-thread mutators, 4 gc workers, shadow mode + oracle: every
    // collection validates each thread's gc-map roots first.
    let config = RuntimeOptions::new().gc_workers(4).torture(true).oracle(true);
    let out = run_module_par(module, 1 << 15, 4, true, config).expect("parallel run");
    assert_eq!(out.outputs.len(), 4);
    for (tid, thread_out) in out.outputs.iter().enumerate() {
        assert_eq!(thread_out, &baseline.output, "mutator {tid} diverged from baseline");
    }
    assert_eq!(out.output, baseline.output.repeat(4));
    assert!(out.collections >= baseline.collections, "4 mutators allocate at least as much");
    assert_eq!(out.gc_each.len() as u64, out.collections);
    for (i, gc) in out.gc_each.iter().enumerate() {
        assert_eq!(gc.per_worker_words.len(), 4, "collection {i} ran 4 workers");
        assert_eq!(
            gc.per_worker_words.iter().sum::<u64>(),
            gc.words_copied,
            "collection {i}: per-worker words must account for the total"
        );
    }
}

#[test]
fn poll_sites_are_gc_points_with_table_entries() {
    // An allocation-free loop only stops for the handshake because the
    // compiler put a gc-point on its back edge.
    let src = "MODULE Poll;
    PROCEDURE Crunch(n: INTEGER): INTEGER =
    VAR i, h: INTEGER;
    BEGIN
      h := 7;
      FOR i := 1 TO n DO h := (h * 31 + i) MOD 1000003; END;
      RETURN h;
    END Crunch;
    BEGIN
      PutInt(Crunch(1000));
    END Poll.";
    let module = compile(src, &Options::o2()).expect("compiles");
    let code_len = module.code.len() as u32;
    let vm = ParMachine::new(
        module,
        ParLayout {
            semi_words: 1 << 12,
            stack_words: 1 << 12,
            mutators: 1,
            ..ParLayout::default()
        },
    );
    let polls: Vec<u32> = (0..code_len).filter(|&pc| vm.is_poll_pc(pc)).collect();
    assert!(!polls.is_empty(), "loopy program must have explicit poll sites");
    for pc in polls {
        assert!(vm.is_gc_point_pc(pc), "poll site at pc {pc} must be a gc-point");
    }
}

/// Alternating allocation and a long allocation-free spin, compiled
/// *without* loop gc-points: once two mutators desynchronize, a torture
/// collection request lands while the other thread is mid-spin with no
/// gc-point in reach.
const SPIN_SRC: &str = "MODULE Spin;
TYPE R = REF RECORD x: INTEGER END;

PROCEDURE Crunch(n: INTEGER): INTEGER =
VAR i, h: INTEGER;
BEGIN
  h := 7;
  FOR i := 1 TO n DO h := (h * 31 + i) MOD 1000003; END;
  RETURN h;
END Crunch;

PROCEDURE Work(): INTEGER =
VAR r: R; round, s: INTEGER;
BEGIN
  s := 0;
  FOR round := 1 TO 4 DO
    r := NEW(R);
    r.x := round;
    s := (s + r.x + Crunch(2000000)) MOD 1000003;
  END;
  RETURN s;
END Work;

BEGIN
  PutInt(Work());
END Spin.";

fn no_loop_points() -> Options {
    let mut opts = Options::o2();
    opts.codegen.gc.loop_gc_points = false;
    opts
}

#[test]
fn scheduler_max_advance_exhaustion_is_a_structured_error() {
    // Deterministic single-threaded scheduler variant: thread 0
    // allocates under torture while thread 1 crunches an allocation-free
    // loop with no gc-points; thread 1 can never stand at a gc-point,
    // so the collection protocol must give up with a structured error
    // instead of spinning the scheduler forever.
    let module = compile(SPIN_SRC, &no_loop_points()).expect("compiles");
    let machine = Machine::new(
        module,
        MachineLayout {
            semi_words: 1 << 12,
            stack_words: 1 << 13,
            max_threads: 2,
            ..MachineLayout::default()
        },
    );
    let mut ex = Executor::new(machine, RuntimeOptions::new().torture(true).max_advance(10_000));
    ex.machine.spawn(ex.machine.module.main, &[]);
    let crunch =
        ex.machine.module.procs.iter().position(|p| p.name == "Crunch").expect("Crunch exists")
            as u16;
    ex.machine.spawn(crunch, &[2_000_000_000]);
    match ex.run() {
        Err(ExecError::StuckThread { thread }) => assert_eq!(thread, 1),
        other => panic!("expected StuckThread, got {other:?}"),
    }
}

#[test]
fn parallel_max_advance_exhaustion_is_a_structured_error() {
    // Two OS-thread mutators under torture. After the first round they
    // drift apart, so some collection request finds the other mutator
    // deep inside Crunch with no gc-point within the advance budget;
    // the leader must observe the structured failure and release
    // everyone rather than waiting forever.
    let module = compile(SPIN_SRC, &no_loop_points()).expect("compiles");
    let config = RuntimeOptions::new().gc_workers(2).torture(true).max_advance(10_000);
    match run_module_par(module, 1 << 14, 2, false, config) {
        Err(ExecError::StuckThread { .. }) => {}
        other => panic!("expected StuckThread, got {other:?}"),
    }
}
