//! Machine-level behavioral tests across the whole pipeline: register
//! save/restore discipline, gc-point blocking, table/disassembly golden
//! shapes, and the OOM boundary.

use m3gc::compiler::{compile, run_module, Options};
use m3gc::core::layout::BaseReg;
use m3gc::vm::decode::DecodedCode;
use m3gc::vm::isa::{Instr, FIRST_CALLEE_SAVE};
use m3gc::vm::machine::{Machine, MachineLayout, RunOutcome};

const CALLS: &str = "MODULE C;
TYPE R = REF RECORD v: INTEGER END;
PROCEDURE Id(x: INTEGER): INTEGER =
BEGIN RETURN x; END Id;
PROCEDURE Work(n: INTEGER): INTEGER =
VAR r: R; i, acc: INTEGER;
BEGIN
  acc := 0;
  FOR i := 1 TO n DO
    r := NEW(R);
    r.v := Id(i);
    acc := acc + r.v;
  END;
  RETURN acc;
END Work;
BEGIN
  PutInt(Work(30));
END C.";

/// Every callee-save register a procedure writes is saved in its prologue
/// and restored before every `Ret`.
#[test]
fn callee_save_discipline_holds() {
    let module = compile(CALLS, &Options::o2()).unwrap();
    let decoded = DecodedCode::new(&module.code);
    for meta in &module.procs {
        // Registers this procedure writes.
        let mut written = std::collections::HashSet::new();
        let mut pos = meta.entry_pc;
        while pos < meta.end_pc {
            let (ins, next) = decoded.at(pos);
            let dst = match ins {
                Instr::MovI { dst, .. }
                | Instr::Mov { dst, .. }
                | Instr::Alu { dst, .. }
                | Instr::AluI { dst, .. }
                | Instr::UnAlu { dst, .. }
                | Instr::Ld { dst, .. }
                | Instr::LdF { dst, .. }
                | Instr::Lea { dst, .. }
                | Instr::LdG { dst, .. }
                | Instr::LeaG { dst, .. }
                | Instr::Alloc { dst, .. }
                | Instr::AllocA { dst, .. } => Some(*dst),
                _ => None,
            };
            if let Some(d) = dst {
                if d >= FIRST_CALLEE_SAVE {
                    written.insert(d);
                }
            }
            pos = *next;
        }
        let saved: std::collections::HashSet<u8> = meta.save_regs.iter().map(|&(r, _)| r).collect();
        // Restores (LdF of a saved register from its save slot) count as
        // writes; exclude them.
        for r in &written {
            assert!(
                saved.contains(r),
                "procedure `{}` writes r{} without saving it (saved: {:?})",
                meta.name,
                r,
                saved
            );
        }
    }
}

/// Ground tables only use FP and AP bases (SP never appears in generated
/// code), and offsets stay within the frame.
#[test]
fn ground_tables_are_frame_relative() {
    let module = compile(CALLS, &Options::o2()).unwrap();
    for (proc, meta) in module.logical_maps.procs.iter().zip(&module.procs) {
        for g in &proc.ground {
            match g.base {
                BaseReg::Fp => {
                    assert!(g.offset >= 0, "{}: negative FP offset {g}", proc.name);
                    // Pushed-argument derivation targets may lie just past
                    // the frame; plain ground entries must be inside it.
                    assert!(
                        (g.offset as u32) < meta.frame_words.max(1),
                        "{}: ground entry {g} outside frame of {} words",
                        proc.name,
                        meta.frame_words
                    );
                }
                BaseReg::Ap => {
                    assert!((g.offset as u32) < meta.n_args.max(1), "{}: {g}", proc.name);
                }
                BaseReg::Sp => panic!("{}: unexpected SP-based ground entry {g}", proc.name),
            }
        }
    }
}

/// While a collection is pending, a runnable thread stops exactly at the
/// next gc-point pc — not before, not after.
#[test]
fn threads_block_exactly_at_gc_points() {
    let module = compile(CALLS, &Options::o2()).unwrap();
    let mut machine = Machine::new(
        module,
        MachineLayout {
            semi_words: 1 << 14,
            stack_words: 4096,
            max_threads: 2,
            ..MachineLayout::default()
        },
    );
    let main = machine.module.main;
    let tid = machine.spawn(main, &[]);
    // Let it run a little, then pretend a collection is pending.
    assert_eq!(machine.run_thread(tid, 50), RunOutcome::OutOfFuel);
    machine.gc_pending = true;
    match machine.run_thread(tid, 1_000_000) {
        RunOutcome::AtGcPoint => {
            let pc = machine.threads[tid].pc;
            assert!(machine.is_gc_point_pc(pc), "blocked at non-gc-point pc {pc}");
        }
        other => panic!("expected AtGcPoint, got {other:?}"),
    }
}

/// A barely-sufficient heap completes; one word less hits OutOfMemory —
/// the boundary is sharp because the collector is exact.
#[test]
fn oom_boundary_is_sharp() {
    // Keeps `n` nodes of 3 words live.
    let src = |n: u32| {
        format!(
            "MODULE B;
             TYPE L = REF RECORD v: INTEGER; next: L END;
             VAR head: L; i: INTEGER;
             BEGIN
               FOR i := 1 TO {n} DO
                 WITH c = NEW(L) DO c.v := i; c.next := head; head := c; END;
               END;
               PutInt(head.v);
             END B."
        )
    };
    let need = 40 * 3; // live words
    let ok = run_module(compile(&src(40), &Options::o2()).unwrap(), need + 8);
    assert!(ok.is_ok(), "{:?}", ok.err().map(|e| e.to_string()));
    let too_small = run_module(compile(&src(40), &Options::o2()).unwrap(), need - 8);
    assert!(too_small.is_err());
}

/// The disassembler marks exactly the gc-point pcs from the tables.
#[test]
fn disassembly_marks_gc_points() {
    let module = compile(CALLS, &Options::o2()).unwrap();
    let n_points = module.logical_maps.num_points();
    let text = m3gc::vm::disasm::disassemble(&module);
    let marked = text.lines().filter(|l| l.len() > 6 && l.as_bytes()[6] == b'*').count();
    assert_eq!(marked, n_points, "{text}");
}
