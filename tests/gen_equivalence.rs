//! Generational / semispace equivalence property: random mutator
//! workloads — seeded in-language graph mutations with churn — must leave
//! *isomorphic reachable heap graphs* and produce identical output under
//! the generational collector and the plain semispace collector, for
//! arbitrary seeds and under all six table encoding schemes.
//!
//! Heap addresses legitimately differ between the two collectors (objects
//! sit in different spaces, headers carry age bits under the generational
//! heap), so the comparison canonicalises each final heap into a graph
//! signature: a breadth-first walk from the global pointer roots in
//! module order, mapping each object address to its discovery index and
//! each object to `(type id, length, fields)` with pointer fields
//! replaced by discovery indices. Two runs are equivalent iff their
//! signatures match word for word.
//!
//! The workspace builds with no registry access, so instead of `proptest`
//! this uses the deterministic replay-by-seed harness from `m3gc-testkit`.

use std::collections::HashMap;

use m3gc::compiler::{compile, Options};
use m3gc::core::encode::Scheme;
use m3gc::core::heap::{header_type_id, HeapType};
use m3gc::runtime::scheduler::Executor;
use m3gc::runtime::trace::{gather_global_roots, read_root};
use m3gc::runtime::RuntimeOptions;
use m3gc::vm::machine::{HeapStrategy, Machine, MachineLayout};
use m3gc_testkit::run_cases;

/// One canonicalised heap object: type, array length, and fields with
/// pointers rewritten to BFS discovery indices.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ObjSig {
    type_id: u32,
    len: i64,
    fields: Vec<FieldSig>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum FieldSig {
    Int(i64),
    Nil,
    Ref(usize),
}

/// Canonicalises the machine's reachable heap (from the global pointer
/// roots, in module order) into an address-independent signature.
fn heap_signature(m: &Machine) -> Vec<ObjSig> {
    let mut index: HashMap<i64, usize> = HashMap::new();
    let mut order: Vec<i64> = Vec::new();
    let enqueue = |v: i64, index: &mut HashMap<i64, usize>, order: &mut Vec<i64>| -> FieldSig {
        if v == 0 {
            return FieldSig::Nil;
        }
        let next = index.len();
        let idx = *index.entry(v).or_insert_with(|| {
            order.push(v);
            next
        });
        FieldSig::Ref(idx)
    };

    for r in gather_global_roots(m) {
        enqueue(read_root(m, r), &mut index, &mut order);
    }

    let mut sig = Vec::new();
    let mut at = 0;
    while at < order.len() {
        let addr = order[at];
        at += 1;
        let header = m.mem[addr as usize];
        assert!(header >= 0, "forwarded header in a finished heap at {addr}");
        let ty_id = header_type_id(header);
        let ty = m.module.types.get(ty_id);
        let (len, first_field, field_words) = match ty {
            HeapType::Record { words, .. } => (0, 1, i64::from(*words)),
            HeapType::Array { elem_words, .. } => {
                let n = m.mem[addr as usize + 1];
                (n, 2, i64::from(*elem_words) * n)
            }
        };
        let ptr_offsets: Vec<u32> = ty.pointer_offset_iter(len as u32).collect();
        let mut fields = Vec::with_capacity(field_words as usize);
        for w in 0..field_words {
            let off = first_field + w;
            let v = m.mem[(addr + off) as usize];
            if ptr_offsets.contains(&(off as u32)) {
                fields.push(enqueue(v, &mut index, &mut order));
            } else {
                fields.push(FieldSig::Int(v));
            }
        }
        sig.push(ObjSig { type_id: ty_id.0, len, fields });
    }
    sig
}

/// Compiles `src` under `scheme`, runs it on `heap`, and returns the
/// program output, collection count, and final heap signature.
fn run_and_sign(src: &str, scheme: Scheme, heap: HeapStrategy) -> (String, u64, Vec<ObjSig>) {
    let module = compile(src, &Options::o2().with_scheme(scheme)).expect("compiles");
    let machine = Machine::new(
        module,
        MachineLayout { semi_words: 4096, stack_words: 1 << 14, max_threads: 2, heap },
    );
    let mut ex = Executor::new(machine, RuntimeOptions::new());
    let out = ex.run_main().unwrap_or_else(|e| panic!("{e}\noutput so far: {}", ex.machine.output));
    let sig = heap_signature(&ex.machine);
    (out.output, out.collections, sig)
}

/// The random mutator: a pool of nodes mutated by a seeded in-language
/// LCG — re-linking, node replacement (creating garbage), periodic edge
/// severing, and a WITH-bound interior pointer held across allocations so
/// derived values are exercised too.
fn mutator_source(seed: u32, nodes: u32, rounds: u32) -> String {
    format!(
        "MODULE G;
CONST N = {nodes};
TYPE Node = REF RECORD id: INTEGER; a, b: Node END;
     Arr = REF ARRAY OF Node;
VAR pool: Arr; keep: Node; seed, i, r, x, y, s: INTEGER;
PROCEDURE Next(bound: INTEGER): INTEGER =
BEGIN
  seed := (seed * 1103515245 + 12345) MOD 2147483648;
  IF seed < 0 THEN seed := -seed; END;
  RETURN seed MOD bound;
END Next;
PROCEDURE Checksum(): INTEGER =
VAR k, cs, hops: INTEGER; n: Node;
BEGIN
  cs := 0;
  FOR k := 0 TO N - 1 DO
    n := pool[k];
    hops := 0;
    WHILE (n # NIL) AND (hops < 6) DO
      cs := (cs * 31 + n.id) MOD 1000003;
      IF hops MOD 2 = 0 THEN n := n.a; ELSE n := n.b; END;
      INC(hops);
    END;
  END;
  RETURN cs;
END Checksum;
BEGIN
  seed := {seed};
  pool := NEW(Arr, N);
  FOR i := 0 TO N - 1 DO pool[i] := NEW(Node); pool[i].id := i + 1; END;
  keep := NEW(Node);
  keep.id := 999983;
  s := 0;
  FOR r := 1 TO {rounds} DO
    x := Next(N);
    y := Next(N);
    IF r MOD 3 = 0 THEN pool[x].a := pool[y];
    ELSIF r MOD 3 = 1 THEN pool[x].b := pool[y];
    ELSE
      pool[x] := NEW(Node);
      pool[x].id := r;
      pool[x].a := pool[y];
      keep.b := pool[x];
    END;
    (* An interior pointer held across an allocation: derived values must
       survive both collectors' relocations. *)
    WITH h = pool[x].id DO
      IF r MOD 7 = 0 THEN
        keep.a := NEW(Node);
        keep.a.id := r;
      END;
      s := (s + h) MOD 1000003;
    END;
    IF r MOD 25 = 0 THEN
      FOR i := 0 TO N - 1 DO
        pool[i].a := NIL;
        pool[i].b := NIL;
      END;
    END;
  END;
  PutInt(Checksum() + s);
END G."
    )
}

#[test]
fn generational_and_semispace_heaps_are_isomorphic() {
    run_cases("generational_and_semispace_heaps_are_isomorphic", 10, |rng| {
        let seed = rng.range_u32(1, 1_000_000);
        let nodes = rng.range_u32(6, 16);
        let rounds = rng.range_u32(100, 300);
        let nursery = [32usize, 64, 128][rng.index(3)];
        let src = mutator_source(seed, nodes, rounds);
        let expected = m3gc::compiler::reference_output(&src).unwrap();
        for scheme in Scheme::TABLE2 {
            let (semi_out, semi_gcs, semi_sig) =
                run_and_sign(&src, scheme, HeapStrategy::Semispace);
            let (gen_out, _, gen_sig) = run_and_sign(
                &src,
                scheme,
                HeapStrategy::Generational { nursery_words: nursery, promote_age: 2 },
            );
            assert_eq!(semi_out, expected, "{scheme}: semispace output, seed {seed}");
            assert_eq!(gen_out, expected, "{scheme}: generational output, seed {seed}");
            assert_eq!(
                semi_sig, gen_sig,
                "{scheme}: heap graphs differ, seed {seed} nodes {nodes} rounds {rounds} \
                 nursery {nursery} (semispace ran {semi_gcs} collections)"
            );
            assert!(!semi_sig.is_empty(), "the pool must be reachable");
        }
    });
}

#[test]
fn gen_heaps_survive_collection_pressure() {
    // Same property at nastier pressure: a heap barely larger than the
    // live set and a tiny nursery, so minor collections, promotions and
    // majors all fire constantly.
    run_cases("gen_heaps_survive_collection_pressure", 6, |rng| {
        let seed = rng.range_u32(1, 1_000_000);
        let src = mutator_source(seed, 8, 400);
        let expected = m3gc::compiler::reference_output(&src).unwrap();
        let module = compile(&src, &Options::o2()).expect("compiles");
        let machine = Machine::new(
            module,
            MachineLayout {
                semi_words: 512,
                stack_words: 1 << 14,
                max_threads: 2,
                heap: HeapStrategy::Generational { nursery_words: 32, promote_age: 1 },
            },
        );
        let mut ex = Executor::new(machine, RuntimeOptions::new());
        let out = ex
            .run_main()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\noutput: {}", ex.machine.output));
        assert_eq!(out.output, expected, "seed {seed}");
        assert!(out.minor_collections > 0, "seed {seed}: no minors under pressure");
    });
}
