//! Heap-shape stress tests: randomized object graphs built, mutated and
//! checksummed *in-language*, run under aggressive collection schedules.
//! The collector must preserve graph isomorphism across arbitrarily many
//! compactions — any dropped or corrupted edge changes the checksum.

use m3gc::compiler::{compile, reference_output, run_module_with, Options};
use m3gc::runtime::RuntimeOptions;

/// A program that builds a web of records with an LCG, mutates edges, and
/// checksums by traversal. `seed` specializes the source text.
fn graph_program(seed: u64, nodes: u32, rounds: u32) -> String {
    format!(
        "MODULE Stress;
CONST N = {nodes}; Rounds = {rounds};
TYPE
  Node = REF RECORD
    id: INTEGER;
    a, b: Node;
  END;
  Arr = REF ARRAY OF Node;
VAR
  pool: Arr;
  seed, i, r, x, y: INTEGER;

PROCEDURE Next(bound: INTEGER): INTEGER =
BEGIN
  seed := (seed * 1103515245 + 12345) MOD 2147483648;
  IF seed < 0 THEN seed := -seed; END;
  RETURN seed MOD bound;
END Next;

PROCEDURE Checksum(): INTEGER =
VAR k, s, hops: INTEGER; n: Node;
BEGIN
  s := 0;
  FOR k := 0 TO N - 1 DO
    n := pool[k];
    hops := 0;
    WHILE (n # NIL) AND (hops < 8) DO
      s := (s * 31 + n.id) MOD 1000003;
      IF hops MOD 2 = 0 THEN n := n.a; ELSE n := n.b; END;
      INC(hops);
    END;
  END;
  RETURN s;
END Checksum;

BEGIN
  seed := {seed};
  pool := NEW(Arr, N);
  FOR i := 0 TO N - 1 DO
    pool[i] := NEW(Node);
    pool[i].id := i + 1;
  END;
  FOR r := 1 TO Rounds DO
    x := Next(N);
    y := Next(N);
    IF r MOD 3 = 0 THEN
      pool[x].a := pool[y];
    ELSIF r MOD 3 = 1 THEN
      pool[x].b := pool[y];
    ELSE
      (* Replace a node entirely: the old one may become garbage. *)
      pool[x] := NEW(Node);
      pool[x].id := r;
      pool[x].a := pool[y];
    END;
    (* Churn: short-lived garbage every round. *)
    WITH junk = NEW(Node) DO junk.id := r; END;
  END;
  PutInt(Checksum());
  PutLn();
END Stress."
    )
}

fn stress(seed: u64, nodes: u32, rounds: u32, semi: usize) {
    let src = graph_program(seed, nodes, rounds);
    let expected = reference_output(&src).unwrap_or_else(|e| panic!("reference: {e}"));
    for (name, opts) in [("O0", Options::o0()), ("O2", Options::o2())] {
        let module = compile(&src, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
        let out = run_module_with(module, semi, RuntimeOptions::new())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(out.output, expected, "seed {seed} {name}");
        assert!(out.collections > 0, "seed {seed} {name}: expected collections");
    }
}

#[test]
fn graph_stress_small_heap() {
    stress(74755, 24, 300, 512);
}

#[test]
fn graph_stress_tiny_heap() {
    stress(12345, 12, 200, 160);
}

#[test]
fn graph_stress_alternate_seed() {
    stress(987654321, 30, 400, 768);
}

#[test]
fn graph_stress_torture() {
    // Collection at every allocation, moderately sized graph.
    let src = graph_program(555, 10, 80);
    let expected = reference_output(&src).unwrap();
    let module = compile(&src, &Options::o2()).unwrap();
    let out = run_module_with(module, 1 << 14, RuntimeOptions::new().torture(true)).unwrap();
    assert_eq!(out.output, expected);
    assert!(out.collections >= 80, "got {}", out.collections);
}

#[test]
fn survivor_heavy_heap_compacts() {
    // Everything stays live: repeated collections must copy the whole
    // graph every time without losing an edge.
    let src = "MODULE Live;
        TYPE L = REF RECORD v: INTEGER; next: L END;
             J = REF RECORD x: INTEGER END;
        VAR head: L; i, s: INTEGER;
        BEGIN
          head := NIL;
          FOR i := 1 TO 60 DO
            WITH c = NEW(L) DO c.v := i; c.next := head; head := c; END;
          END;
          (* churn garbage while the list stays fully live *)
          FOR i := 1 TO 200 DO
            WITH junk = NEW(J) DO junk.x := i; END;
          END;
          s := 0;
          WHILE head # NIL DO s := s + head.v; head := head.next; END;
          PutInt(s);
        END Live.";
    let expected = reference_output(src).unwrap();
    let module = compile(src, &Options::o2()).unwrap();
    let out = run_module_with(module, 256, RuntimeOptions::new()).unwrap();
    assert_eq!(out.output, expected);
    assert!(out.collections >= 2);
    // The 60-node list (3 words each) survives every collection.
    assert!(out.gc_total.objects_copied as u64 >= 60 * out.collections);
}
