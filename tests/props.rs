//! Property-based tests over the core data structures and the compiler
//! pipeline:
//!
//! * byte packing (Figure 3) round-trips every 32/64-bit value;
//! * ground entries and locations (Figure 4) round-trip;
//! * arbitrary gc-map modules encode and decode identically under all six
//!   schemes — the δ-main delta bitmaps and the Previous elision are pure
//!   compression, never information loss;
//! * random straight-line arithmetic programs compute the same results at
//!   -O0 and -O2, on the reference interpreter and on the VM.

use proptest::prelude::*;

use m3gc::core::decode::TableDecoder;
use m3gc::core::derive::{DerivationRecord, Sign};
use m3gc::core::encode::{encode_module, Scheme};
use m3gc::core::layout::{BaseReg, GroundEntry, Location, RegSet, NUM_HARD_REGS};
use m3gc::core::pack;
use m3gc::core::tables::{GcPointTables, ModuleTables, ProcTables};

proptest! {
    #[test]
    fn pack_roundtrip_i32(v in any::<i32>()) {
        let mut buf = Vec::new();
        let n = pack::pack_word(v, &mut buf);
        let (back, m) = pack::unpack_word(&buf, 0).unwrap();
        prop_assert_eq!(back, v);
        prop_assert_eq!(m, n);
    }

    #[test]
    fn pack_roundtrip_u32(v in any::<u32>()) {
        let mut buf = Vec::new();
        let n = pack::pack_uword(v, &mut buf);
        let (back, m) = pack::unpack_uword(&buf, 0).unwrap();
        prop_assert_eq!(back, v);
        prop_assert_eq!(m, n);
    }

    #[test]
    fn pack_stream_roundtrip(vs in proptest::collection::vec(any::<i32>(), 0..64)) {
        let packed = pack::pack_words(&vs);
        let (back, used) = pack::unpack_words(&packed, 0, vs.len()).unwrap();
        prop_assert_eq!(back, vs);
        prop_assert_eq!(used, packed.len());
    }

    #[test]
    fn ground_entry_roundtrip(base in 0..3i32, off in -100_000..100_000i32) {
        let e = GroundEntry::new(BaseReg::from_code(base).unwrap(), off);
        prop_assert_eq!(GroundEntry::from_word(e.to_word()), Some(e));
    }

    #[test]
    fn location_roundtrip(is_reg in any::<bool>(), reg in 0..NUM_HARD_REGS as u8,
                          base in 0..3i32, off in -50_000..50_000i32) {
        let loc = if is_reg {
            Location::Reg(reg)
        } else {
            Location::Slot(BaseReg::from_code(base).unwrap(), off)
        };
        prop_assert_eq!(Location::from_word(loc.to_word()), Some(loc));
    }
}

/// Strategy for a random location.
fn arb_location() -> impl Strategy<Value = Location> {
    prop_oneof![
        (0..NUM_HARD_REGS as u8).prop_map(Location::Reg),
        (0..3i32, -60..120i32)
            .prop_map(|(b, o)| Location::Slot(BaseReg::from_code(b).unwrap(), o)),
    ]
}

fn arb_sign() -> impl Strategy<Value = Sign> {
    prop_oneof![Just(Sign::Plus), Just(Sign::Minus)]
}

fn arb_bases() -> impl Strategy<Value = Vec<(Location, Sign)>> {
    proptest::collection::vec((arb_location(), arb_sign()), 0..4)
}

fn arb_derivation() -> impl Strategy<Value = DerivationRecord> {
    prop_oneof![
        (arb_location(), arb_bases())
            .prop_map(|(target, bases)| DerivationRecord::Simple { target, bases }),
        (arb_location(), arb_location(), proptest::collection::vec(arb_bases(), 1..3)).prop_map(
            |(target, path_var, variants)| DerivationRecord::Ambiguous {
                target,
                path_var,
                variants
            }
        ),
    ]
}

/// Strategy for a random module's worth of gc tables.
fn arb_module() -> impl Strategy<Value = ModuleTables> {
    let ground = proptest::collection::btree_set((0..3i32, -60..120i32), 0..10);
    let proc = (ground, 1..8usize).prop_flat_map(|(ground_set, n_points)| {
        let ground: Vec<GroundEntry> = ground_set
            .into_iter()
            .map(|(b, o)| GroundEntry::new(BaseReg::from_code(b).unwrap(), o))
            .collect();
        let ng = ground.len() as u32;
        let point = (
            proptest::collection::btree_set(0..ng.max(1), 0..=ng as usize),
            any::<u16>(),
            proptest::collection::vec(arb_derivation(), 0..3),
            1..200u32,
        );
        let points = proptest::collection::vec(point, n_points);
        (Just(ground), points)
    });
    proptest::collection::vec(proc, 1..4).prop_map(|procs| {
        let mut module = ModuleTables::default();
        let mut pc = 0u32;
        for (i, (ground, points)) in procs.into_iter().enumerate() {
            let entry_pc = pc;
            let ng = ground.len() as u32;
            let mut tables = ProcTables {
                name: format!("p{i}"),
                entry_pc,
                ground,
                points: Vec::new(),
            };
            for (live, regbits, derivations, delta) in points {
                pc += delta;
                tables.points.push(GcPointTables {
                    pc,
                    live_stack: live.into_iter().filter(|&i| i < ng).collect(),
                    regs: RegSet(u32::from(regbits) & ((1 << NUM_HARD_REGS) - 1)),
                    derivations,
                });
            }
            pc += 10;
            module.procs.push(tables);
        }
        module
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every scheme is lossless: decoding reproduces exactly the logical
    /// tables (resolved through the ground table).
    #[test]
    fn schemes_are_lossless(module in arb_module()) {
        prop_assert_eq!(module.validate(), Ok(()));
        for scheme in Scheme::TABLE2 {
            let encoded = encode_module(&module, scheme);
            let decoder = TableDecoder::try_new(&encoded).unwrap();
            for proc in &module.procs {
                for (i, pt) in proc.points.iter().enumerate() {
                    let d = decoder.lookup(pt.pc).unwrap();
                    prop_assert_eq!(&d.stack_slots, &proc.live_slots(i), "{} stack", scheme);
                    prop_assert_eq!(d.regs, pt.regs, "{} regs", scheme);
                    prop_assert_eq!(&d.derivations, &pt.derivations, "{} derivs", scheme);
                }
            }
        }
    }

    /// Compression monotonicity: PP is never larger than packing alone or
    /// previous alone, and packing never loses to plain.
    #[test]
    fn compression_never_grows(module in arb_module()) {
        let size = |s: Scheme| encode_module(&module, s).bytes.len();
        prop_assert!(size(Scheme::FULL_PACKED) <= size(Scheme::FULL_PLAIN));
        prop_assert!(size(Scheme::DELTA_PACKED) <= size(Scheme::DELTA_PLAIN));
        prop_assert!(size(Scheme::DELTA_PREVIOUS) <= size(Scheme::DELTA_PLAIN));
        prop_assert!(size(Scheme::DELTA_MAIN_PP) <= size(Scheme::DELTA_PACKED));
        prop_assert!(size(Scheme::DELTA_MAIN_PP) <= size(Scheme::DELTA_PREVIOUS));
    }
}

/// A tiny random-expression generator for differential compiler testing.
#[derive(Debug, Clone)]
enum ExprTree {
    Lit(i16),
    Var(u8),
    Add(Box<ExprTree>, Box<ExprTree>),
    Sub(Box<ExprTree>, Box<ExprTree>),
    Mul(Box<ExprTree>, Box<ExprTree>),
}

fn arb_expr() -> impl Strategy<Value = ExprTree> {
    let leaf = prop_oneof![
        any::<i16>().prop_map(ExprTree::Lit),
        (0..4u8).prop_map(ExprTree::Var),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ExprTree::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ExprTree::Sub(a.into(), b.into())),
            (inner.clone(), inner).prop_map(|(a, b)| ExprTree::Mul(a.into(), b.into())),
        ]
    })
}

fn expr_to_m3(e: &ExprTree) -> String {
    match e {
        ExprTree::Lit(v) => {
            if *v < 0 {
                format!("(0 - {})", -i32::from(*v))
            } else {
                v.to_string()
            }
        }
        ExprTree::Var(i) => format!("v{i}"),
        ExprTree::Add(a, b) => format!("({} + {})", expr_to_m3(a), expr_to_m3(b)),
        ExprTree::Sub(a, b) => format!("({} - {})", expr_to_m3(a), expr_to_m3(b)),
        ExprTree::Mul(a, b) => format!("({} * {})", expr_to_m3(a), expr_to_m3(b)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random arithmetic programs agree between the reference interpreter
    /// and the VM, at both optimization levels. (MOD keeps every
    /// intermediate well within i64 even after a few multiplications.)
    #[test]
    fn random_programs_agree(exprs in proptest::collection::vec(arb_expr(), 1..4),
                             inits in proptest::collection::vec(-100..100i32, 4)) {
        let mut body = String::new();
        for (i, v) in inits.iter().enumerate() {
            if *v < 0 {
                body.push_str(&format!("  v{i} := 0 - {};\n", -v));
            } else {
                body.push_str(&format!("  v{i} := {v};\n"));
            }
        }
        for (k, e) in exprs.iter().enumerate() {
            let target = k % 4;
            body.push_str(&format!("  v{target} := ({}) MOD 100003;\n", expr_to_m3(e)));
        }
        body.push_str("  PutInt(v0 + v1 + v2 + v3);\n");
        let src = format!(
            "MODULE P;\nVAR v0, v1, v2, v3: INTEGER;\nBEGIN\n{body}END P."
        );
        let expected = m3gc::compiler::reference_output(&src).unwrap();
        for opts in [m3gc::compiler::Options::o0(), m3gc::compiler::Options::o2()] {
            let module = m3gc::compiler::compile(&src, &opts).unwrap();
            let out = m3gc::compiler::run_module(module, 4096).unwrap();
            prop_assert_eq!(&out.output, &expected);
        }
    }
}

/// Randomized heap graphs (seeded in-language LCG mutations): the VM with
/// a small heap — many compactions — must agree with the reference
/// interpreter for arbitrary seeds.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_graphs_survive_compaction(seed in 1u32..1_000_000, nodes in 6u32..20) {
        let src = format!(
            "MODULE G;
CONST N = {nodes};
TYPE Node = REF RECORD id: INTEGER; a, b: Node END;
     Arr = REF ARRAY OF Node;
VAR pool: Arr; seed, i, r, x, y: INTEGER;
PROCEDURE Next(bound: INTEGER): INTEGER =
BEGIN
  seed := (seed * 1103515245 + 12345) MOD 2147483648;
  IF seed < 0 THEN seed := -seed; END;
  RETURN seed MOD bound;
END Next;
PROCEDURE Checksum(): INTEGER =
VAR k, s, hops: INTEGER; n: Node;
BEGIN
  s := 0;
  FOR k := 0 TO N - 1 DO
    n := pool[k];
    hops := 0;
    WHILE (n # NIL) AND (hops < 6) DO
      s := (s * 31 + n.id) MOD 1000003;
      IF hops MOD 2 = 0 THEN n := n.a; ELSE n := n.b; END;
      INC(hops);
    END;
  END;
  RETURN s;
END Checksum;
BEGIN
  seed := {seed};
  pool := NEW(Arr, N);
  FOR i := 0 TO N - 1 DO pool[i] := NEW(Node); pool[i].id := i + 1; END;
  FOR r := 1 TO 200 DO
    x := Next(N);
    y := Next(N);
    IF r MOD 3 = 0 THEN pool[x].a := pool[y];
    ELSIF r MOD 3 = 1 THEN pool[x].b := pool[y];
    ELSE
      pool[x] := NEW(Node);
      pool[x].id := r;
      pool[x].a := pool[y];
    END;
    (* Periodically sever edges so replaced nodes become garbage and the
       live set stays bounded. *)
    IF r MOD 25 = 0 THEN
      FOR i := 0 TO N - 1 DO
        pool[i].a := NIL;
        pool[i].b := NIL;
      END;
    END;
  END;
  PutInt(Checksum());
END G."
        );
        let expected = m3gc::compiler::reference_output(&src).unwrap();
        let module = m3gc::compiler::compile(&src, &m3gc::compiler::Options::o2()).unwrap();
        // Heap sized to the worst-case live set plus a sliver, well below
        // total allocation: constant compaction.
        let semi = (nodes as usize + 30) * 4 + nodes as usize + 24;
        let out = m3gc::compiler::run_module(module, semi).unwrap();
        prop_assert_eq!(&out.output, &expected);
        prop_assert!(out.collections > 0, "expected collections with semi={}", semi);
    }
}
