//! Property-based tests over the core data structures and the compiler
//! pipeline:
//!
//! * byte packing (Figure 3) round-trips every 32/64-bit value;
//! * ground entries and locations (Figure 4) round-trip;
//! * arbitrary gc-map modules encode and decode identically under all six
//!   schemes — the δ-main delta bitmaps and the Previous elision are pure
//!   compression, never information loss;
//! * the memoizing [`DecodeCache`] agrees point-for-point with a fresh
//!   sequential [`TableDecoder::lookup`] under every scheme, in arbitrary
//!   lookup orders;
//! * random straight-line arithmetic programs compute the same results at
//!   -O0 and -O2, on the reference interpreter and on the VM.
//!
//! The workspace builds with no registry access, so instead of `proptest`
//! these use the deterministic generator and replay-by-seed harness from
//! `m3gc-testkit`.

use std::collections::BTreeSet;

use m3gc::core::decode::{DecodeCache, TableDecoder};
use m3gc::core::derive::{DerivationRecord, Sign};
use m3gc::core::encode::{encode_module, Scheme};
use m3gc::core::layout::{BaseReg, GroundEntry, Location, RegSet, NUM_HARD_REGS};
use m3gc::core::pack;
use m3gc::core::tables::{GcPointTables, ModuleTables, ProcTables};
use m3gc_testkit::{run_cases, Rng};

#[test]
fn pack_roundtrip_i32() {
    run_cases("pack_roundtrip_i32", 256, |rng| {
        let v = rng.next_i32();
        let mut buf = Vec::new();
        let n = pack::pack_word(v, &mut buf);
        let (back, m) = pack::unpack_word(&buf, 0).unwrap();
        assert_eq!(back, v);
        assert_eq!(m, n);
    });
}

#[test]
fn pack_roundtrip_u32() {
    run_cases("pack_roundtrip_u32", 256, |rng| {
        let v = rng.next_u32();
        let mut buf = Vec::new();
        let n = pack::pack_uword(v, &mut buf);
        let (back, m) = pack::unpack_uword(&buf, 0).unwrap();
        assert_eq!(back, v);
        assert_eq!(m, n);
    });
}

#[test]
fn pack_stream_roundtrip() {
    run_cases("pack_stream_roundtrip", 128, |rng| {
        let vs: Vec<i32> = (0..rng.index(64)).map(|_| rng.next_i32()).collect();
        let packed = pack::pack_words(&vs);
        let (back, used) = pack::unpack_words(&packed, 0, vs.len()).unwrap();
        assert_eq!(back, vs);
        assert_eq!(used, packed.len());
    });
}

#[test]
fn ground_entry_roundtrip() {
    run_cases("ground_entry_roundtrip", 256, |rng| {
        let base = BaseReg::from_code(rng.range_i32(0, 3)).unwrap();
        let e = GroundEntry::new(base, rng.range_i32(-100_000, 100_000));
        assert_eq!(GroundEntry::from_word(e.to_word()), Some(e));
    });
}

#[test]
fn location_roundtrip() {
    run_cases("location_roundtrip", 256, |rng| {
        let loc = if rng.coin() {
            Location::Reg(rng.index(NUM_HARD_REGS) as u8)
        } else {
            let base = BaseReg::from_code(rng.range_i32(0, 3)).unwrap();
            Location::Slot(base, rng.range_i32(-50_000, 50_000))
        };
        assert_eq!(Location::from_word(loc.to_word()), Some(loc));
    });
}

/// A random location over the register file and the three base registers.
fn arb_location(rng: &mut Rng) -> Location {
    if rng.coin() {
        Location::Reg(rng.index(NUM_HARD_REGS) as u8)
    } else {
        let base = BaseReg::from_code(rng.range_i32(0, 3)).unwrap();
        Location::Slot(base, rng.range_i32(-60, 120))
    }
}

fn arb_sign(rng: &mut Rng) -> Sign {
    if rng.coin() {
        Sign::Plus
    } else {
        Sign::Minus
    }
}

fn arb_bases(rng: &mut Rng) -> Vec<(Location, Sign)> {
    (0..rng.index(4)).map(|_| (arb_location(rng), arb_sign(rng))).collect()
}

fn arb_derivation(rng: &mut Rng) -> DerivationRecord {
    let target = arb_location(rng);
    if rng.coin() {
        DerivationRecord::Simple { target, bases: arb_bases(rng) }
    } else {
        let path_var = arb_location(rng);
        let variants = (0..1 + rng.index(2)).map(|_| arb_bases(rng)).collect();
        DerivationRecord::Ambiguous { target, path_var, variants }
    }
}

/// A random module's worth of gc tables: 1–3 procedures, each with a
/// small ground table and 1–7 gc-points at strictly increasing pcs.
fn arb_module(rng: &mut Rng) -> ModuleTables {
    let mut module = ModuleTables::default();
    let mut pc = 0u32;
    for i in 0..1 + rng.index(3) {
        let ground_set: BTreeSet<(i32, i32)> =
            (0..rng.index(10)).map(|_| (rng.range_i32(0, 3), rng.range_i32(-60, 120))).collect();
        let ground: Vec<GroundEntry> = ground_set
            .into_iter()
            .map(|(b, o)| GroundEntry::new(BaseReg::from_code(b).unwrap(), o))
            .collect();
        let ng = ground.len() as u32;
        let mut tables =
            ProcTables { name: format!("p{i}"), entry_pc: pc, ground, points: Vec::new() };
        for _ in 0..1 + rng.index(7) {
            pc += rng.range_u32(1, 200);
            let live: BTreeSet<u32> =
                (0..rng.index(ng as usize + 1)).map(|_| rng.range_u32(0, ng.max(1))).collect();
            let live_stack: Vec<u32> = live.iter().copied().filter(|&i| i < ng).collect();
            // Killed slots are dead — disjoint from the live set by
            // construction (the runtime oracle owns that invariant).
            let killed: BTreeSet<u32> = (0..rng.index(ng as usize + 1))
                .map(|_| rng.range_u32(0, ng.max(1)))
                .filter(|i| *i < ng && !live.contains(i))
                .collect();
            tables.points.push(GcPointTables {
                pc,
                live_stack,
                killed: killed.into_iter().collect(),
                regs: RegSet(rng.next_u32() & ((1 << NUM_HARD_REGS) - 1)),
                derivations: (0..rng.index(3)).map(|_| arb_derivation(rng)).collect(),
            });
        }
        pc += 10;
        module.procs.push(tables);
    }
    module
}

/// Every scheme is lossless: decoding reproduces exactly the logical
/// tables (resolved through the ground table).
#[test]
fn schemes_are_lossless() {
    run_cases("schemes_are_lossless", 64, |rng| {
        let module = arb_module(rng);
        assert_eq!(module.validate(), Ok(()));
        for scheme in Scheme::TABLE2 {
            let encoded = encode_module(&module, scheme);
            let decoder = TableDecoder::build(&encoded).unwrap();
            for proc in &module.procs {
                for (i, pt) in proc.points.iter().enumerate() {
                    let d = decoder.lookup(pt.pc).unwrap();
                    assert_eq!(d.stack_slots, proc.live_slots(i), "{scheme} stack");
                    assert_eq!(d.regs, pt.regs, "{scheme} regs");
                    assert_eq!(d.derivations, pt.derivations, "{scheme} derivs");
                }
            }
        }
    });
}

/// The memoizing cache is semantically invisible: for every gc-point pc,
/// in an arbitrary lookup order (so prefix checkpoints are exercised at
/// random depths), the [`DecodeCache`]-served point equals a fresh
/// sequential [`TableDecoder::lookup`], under all six schemes — and once
/// every pc has been visited, repeats are pure memo hits costing zero
/// further decode operations.
#[test]
fn cached_and_uncached_decoding_agree() {
    run_cases("cached_and_uncached_decoding_agree", 64, |rng| {
        let module = arb_module(rng);
        for scheme in Scheme::TABLE2 {
            let encoded = encode_module(&module, scheme);
            let decoder = TableDecoder::build(&encoded).unwrap();
            let mut cache = DecodeCache::build(&encoded).unwrap();
            let mut pcs: Vec<u32> = decoder.gc_point_pcs().collect();
            // Random visit order: misses resume from mid-procedure
            // checkpoints, not just in-order prefix extensions.
            for k in (1..pcs.len()).rev() {
                pcs.swap(k, rng.index(k + 1));
            }
            for &pc in &pcs {
                assert_eq!(
                    cache.lookup(&encoded.bytes, pc),
                    decoder.lookup(pc).as_ref(),
                    "{scheme}: pc {pc}"
                );
            }
            let full = cache.counters();
            assert_eq!(
                full.points_decoded as usize,
                pcs.len(),
                "{scheme}: each point decodes once"
            );
            for &pc in &pcs {
                assert_eq!(
                    cache.lookup(&encoded.bytes, pc),
                    decoder.lookup(pc).as_ref(),
                    "{scheme}: warm pc {pc}"
                );
            }
            let warm = cache.counters().since(full);
            assert_eq!(warm.misses, 0, "{scheme}: warm pass must not miss");
            assert_eq!(warm.points_decoded, 0, "{scheme}: warm pass must not decode");
            assert_eq!(warm.hits as usize, pcs.len());
            // And a pc that is not a gc-point misses identically.
            assert_eq!(cache.lookup(&encoded.bytes, pc_gap(&pcs)), None);
            assert_eq!(decoder.lookup(pc_gap(&pcs)), None);
        }
    });
}

/// Some pc that is guaranteed not to be a gc-point.
fn pc_gap(pcs: &[u32]) -> u32 {
    pcs.iter().max().map_or(1, |m| m + 1)
}

/// Compression monotonicity: PP is never larger than packing alone or
/// previous alone, and packing never loses to plain.
#[test]
fn compression_never_grows() {
    run_cases("compression_never_grows", 64, |rng| {
        let module = arb_module(rng);
        let size = |s: Scheme| encode_module(&module, s).bytes.len();
        assert!(size(Scheme::FULL_PACKED) <= size(Scheme::FULL_PLAIN));
        assert!(size(Scheme::DELTA_PACKED) <= size(Scheme::DELTA_PLAIN));
        assert!(size(Scheme::DELTA_PREVIOUS) <= size(Scheme::DELTA_PLAIN));
        assert!(size(Scheme::DELTA_MAIN_PP) <= size(Scheme::DELTA_PACKED));
        assert!(size(Scheme::DELTA_MAIN_PP) <= size(Scheme::DELTA_PREVIOUS));
    });
}

/// A tiny random-expression generator for differential compiler testing.
#[derive(Debug, Clone)]
enum ExprTree {
    Lit(i16),
    Var(u8),
    Add(Box<ExprTree>, Box<ExprTree>),
    Sub(Box<ExprTree>, Box<ExprTree>),
    Mul(Box<ExprTree>, Box<ExprTree>),
}

fn arb_expr(rng: &mut Rng, depth: u32) -> ExprTree {
    if depth == 0 || rng.chance(1, 3) {
        if rng.coin() {
            ExprTree::Lit(rng.next_u32() as i16)
        } else {
            ExprTree::Var(rng.index(4) as u8)
        }
    } else {
        let a = Box::new(arb_expr(rng, depth - 1));
        let b = Box::new(arb_expr(rng, depth - 1));
        match rng.index(3) {
            0 => ExprTree::Add(a, b),
            1 => ExprTree::Sub(a, b),
            _ => ExprTree::Mul(a, b),
        }
    }
}

fn expr_to_m3(e: &ExprTree) -> String {
    match e {
        ExprTree::Lit(v) => {
            if *v < 0 {
                format!("(0 - {})", -i32::from(*v))
            } else {
                v.to_string()
            }
        }
        ExprTree::Var(i) => format!("v{i}"),
        ExprTree::Add(a, b) => format!("({} + {})", expr_to_m3(a), expr_to_m3(b)),
        ExprTree::Sub(a, b) => format!("({} - {})", expr_to_m3(a), expr_to_m3(b)),
        ExprTree::Mul(a, b) => format!("({} * {})", expr_to_m3(a), expr_to_m3(b)),
    }
}

/// Random arithmetic programs agree between the reference interpreter
/// and the VM, at both optimization levels. (MOD keeps every
/// intermediate well within i64 even after a few multiplications.)
#[test]
fn random_programs_agree() {
    run_cases("random_programs_agree", 24, |rng| {
        let mut body = String::new();
        for i in 0..4 {
            let v = rng.range_i32(-100, 100);
            if v < 0 {
                body.push_str(&format!("  v{i} := 0 - {};\n", -v));
            } else {
                body.push_str(&format!("  v{i} := {v};\n"));
            }
        }
        for k in 0..1 + rng.index(3) {
            let e = arb_expr(rng, 4);
            let target = k % 4;
            body.push_str(&format!("  v{target} := ({}) MOD 100003;\n", expr_to_m3(&e)));
        }
        body.push_str("  PutInt(v0 + v1 + v2 + v3);\n");
        let src = format!("MODULE P;\nVAR v0, v1, v2, v3: INTEGER;\nBEGIN\n{body}END P.");
        let expected = m3gc::compiler::reference_output(&src).unwrap();
        for opts in [m3gc::compiler::Options::o0(), m3gc::compiler::Options::o2()] {
            let module = m3gc::compiler::compile(&src, &opts).unwrap();
            let out = m3gc::compiler::run_module(module, 4096).unwrap();
            assert_eq!(out.output, expected);
        }
    });
}

/// Randomized heap graphs (seeded in-language LCG mutations): the VM with
/// a small heap — many compactions — must agree with the reference
/// interpreter for arbitrary seeds.
#[test]
fn random_graphs_survive_compaction() {
    run_cases("random_graphs_survive_compaction", 12, |rng| {
        let seed = rng.range_u32(1, 1_000_000);
        let nodes = rng.range_u32(6, 20);
        let src = format!(
            "MODULE G;
CONST N = {nodes};
TYPE Node = REF RECORD id: INTEGER; a, b: Node END;
     Arr = REF ARRAY OF Node;
VAR pool: Arr; seed, i, r, x, y: INTEGER;
PROCEDURE Next(bound: INTEGER): INTEGER =
BEGIN
  seed := (seed * 1103515245 + 12345) MOD 2147483648;
  IF seed < 0 THEN seed := -seed; END;
  RETURN seed MOD bound;
END Next;
PROCEDURE Checksum(): INTEGER =
VAR k, s, hops: INTEGER; n: Node;
BEGIN
  s := 0;
  FOR k := 0 TO N - 1 DO
    n := pool[k];
    hops := 0;
    WHILE (n # NIL) AND (hops < 6) DO
      s := (s * 31 + n.id) MOD 1000003;
      IF hops MOD 2 = 0 THEN n := n.a; ELSE n := n.b; END;
      INC(hops);
    END;
  END;
  RETURN s;
END Checksum;
BEGIN
  seed := {seed};
  pool := NEW(Arr, N);
  FOR i := 0 TO N - 1 DO pool[i] := NEW(Node); pool[i].id := i + 1; END;
  FOR r := 1 TO 200 DO
    x := Next(N);
    y := Next(N);
    IF r MOD 3 = 0 THEN pool[x].a := pool[y];
    ELSIF r MOD 3 = 1 THEN pool[x].b := pool[y];
    ELSE
      pool[x] := NEW(Node);
      pool[x].id := r;
      pool[x].a := pool[y];
    END;
    (* Periodically sever edges so replaced nodes become garbage and the
       live set stays bounded. *)
    IF r MOD 25 = 0 THEN
      FOR i := 0 TO N - 1 DO
        pool[i].a := NIL;
        pool[i].b := NIL;
      END;
    END;
  END;
  PutInt(Checksum());
END G."
        );
        let expected = m3gc::compiler::reference_output(&src).unwrap();
        let module = m3gc::compiler::compile(&src, &m3gc::compiler::Options::o2()).unwrap();
        // Heap sized to the worst-case live set plus a sliver, well below
        // total allocation: constant compaction.
        let semi = (nodes as usize + 30) * 4 + nodes as usize + 24;
        let out = m3gc::compiler::run_module(module, semi).unwrap();
        assert_eq!(out.output, expected, "seed {seed} nodes {nodes}");
        assert!(out.collections > 0, "expected collections with semi={semi}");
    });
}
