//! JIT integration: mixed interpreter/JIT call stacks under gc-torture
//! across all four collectors, code-map boundary lookups, and the
//! return-address-key mutation check.
//!
//! On hosts without x86-64 executable mappings every `--jit` run falls
//! back to the interpreter per-procedure, so the parity assertions hold
//! trivially; the code-map and mutation tests detect that and skip.

use std::sync::Mutex;

use m3gc::compiler::{compile, reference_output, run_module_par_opts, Options};
use m3gc::jit::JitEngine;
use m3gc::runtime::scheduler::ExecError;
use m3gc::runtime::{Executor, GcStrategy, RuntimeOptions};
use m3gc::vm::codemap::JIT_RETPC_BIAS;

/// Serializes tests that mutate process-global environment variables.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// A call-heavy allocating program: deep recursion interleaved with
/// list building, so collections happen with many frames — JIT and
/// interpreted alike — live on the stack.
const SRC: &str = "MODULE JitMix;
TYPE
  Node = REF RECORD
    val: INTEGER;
    next: Node;
  END;
VAR
  head: Node; i: INTEGER;

PROCEDURE Grow(n: INTEGER): Node =
VAR p: Node;
BEGIN
  p := NEW(Node);
  p.val := n;
  p.next := head;
  RETURN p;
END Grow;

PROCEDURE Sum(p: Node): INTEGER =
BEGIN
  IF p = NIL THEN RETURN 0; END;
  RETURN p.val + Sum(p.next);
END Sum;

PROCEDURE Round(n: INTEGER): INTEGER =
BEGIN
  head := Grow(n);
  IF n MOD 7 = 0 THEN
    RETURN Sum(head);
  END;
  RETURN 0;
END Round;

BEGIN
  i := 0;
  WHILE i < 70 DO
    IF Round(i) > 0 THEN
      PutInt(Sum(head));
      PutLn();
    END;
    i := i + 1;
  END;
END JitMix.
";

fn jit_opts(strategy: GcStrategy) -> RuntimeOptions {
    RuntimeOptions::new()
        .strategy(strategy)
        .semi_words(4096)
        .stack_words(1 << 14)
        .torture(true)
        .oracle(true)
        .jit(true)
}

fn run_seq(strategy: GcStrategy) -> Result<String, ExecError> {
    let module = compile(SRC, &Options::o2()).expect("compiles");
    let opts = jit_opts(strategy);
    let mut ex = Executor::try_new(opts.build_machine(module), opts).expect("valid maps");
    ex.run_main().map(|o| o.output)
}

#[test]
fn jit_matches_reference_under_torture_all_collectors() {
    let expected = reference_output(SRC).expect("reference runs");
    for strategy in [GcStrategy::Semispace, GcStrategy::Generational] {
        let out = run_seq(strategy).unwrap_or_else(|e| panic!("{strategy:?}: {e}"));
        assert_eq!(out, expected, "{strategy:?}");
    }
    for strategy in [GcStrategy::Parallel, GcStrategy::Cms] {
        let module = compile(SRC, &Options::o2()).expect("compiles");
        let out = run_module_par_opts(module, jit_opts(strategy).threads(1).gc_workers(2))
            .unwrap_or_else(|e| panic!("{strategy:?}: {e}"));
        assert_eq!(out.output, expected, "{strategy:?}");
    }
}

#[test]
fn mixed_stacks_every_exclusion_under_torture() {
    let _guard = ENV_LOCK.lock().unwrap();
    let expected = reference_output(SRC).expect("reference runs");
    // Excluding each procedure in turn forces every call-boundary
    // combination: JIT→interp (excluded callee), interp→JIT (excluded
    // caller), and — via `Sum`'s recursion — a JIT frame sandwiched
    // between interpreted ones. The collector walks each mixed stack at
    // every torture collection.
    for excluded in ["main", "Grow", "Sum", "Round"] {
        std::env::set_var("M3GC_JIT_EXCLUDE", excluded);
        let result = run_seq(GcStrategy::Semispace);
        std::env::remove_var("M3GC_JIT_EXCLUDE");
        let out = result.unwrap_or_else(|e| panic!("excluded={excluded}: {e}"));
        assert_eq!(out, expected, "excluded={excluded}");
    }
}

#[test]
fn codemap_boundary_lookups() {
    let module = compile(SRC, &Options::o2()).expect("compiles");
    let opts = RuntimeOptions::new().semi_words(4096);
    let machine = opts.build_machine(module);
    let engine = JitEngine::for_machine(&machine);
    if !engine.summary().enabled {
        eprintln!("skipping: no native jit on this host");
        return;
    }
    let map = engine.code_map();
    let points = map.gc_points();
    assert!(!points.is_empty(), "call-heavy module must register call continuations");
    // Strictly increasing native offsets.
    for w in points.windows(2) {
        assert!(w[0].0 < w[1].0, "gc-point keys out of order: {points:?}");
    }
    let (first_off, first_pc) = points[0];
    let (last_off, last_pc) = *points.last().unwrap();
    // Exact keys resolve to their own gc-point pcs.
    assert_eq!(map.resolve_ret(JIT_RETPC_BIAS + i64::from(first_off)), Some(first_pc));
    assert_eq!(map.resolve_ret(JIT_RETPC_BIAS + i64::from(last_off)), Some(last_pc));
    // Below the first continuation nothing resolves; floor search never
    // invents a neighbor.
    if first_off > 0 {
        assert_eq!(map.resolve_ret(JIT_RETPC_BIAS + i64::from(first_off) - 1), None);
    }
    // Between two keys (and past the last), resolution floors to the
    // earlier key — the return address of the *containing* call.
    if points.len() >= 2 {
        let (second_off, _) = points[1];
        assert!(second_off > first_off + 1, "continuations are several bytes apart");
        assert_eq!(map.resolve_ret(JIT_RETPC_BIAS + i64::from(second_off) - 1), Some(first_pc));
    }
    assert_eq!(map.resolve_ret(JIT_RETPC_BIAS + i64::from(last_off) + 1), Some(last_pc));
    // Every registered procedure range round-trips: its first byte maps
    // back to it, its end byte does not (exclusive bound).
    for i in 0..map.proc_count() {
        let range = map.range_of_proc(i).expect("range exists");
        assert_eq!(map.proc_at_native(range.start).map(|r| r.proc), Some(i));
        assert_ne!(map.proc_at_native(range.end).map(|r| r.proc), Some(i));
    }
}

/// The mutation check: shift one native return-address key by one byte
/// so floor resolution reroutes that call site to the neighboring
/// gc-point, and prove the torture/oracle harness catches the
/// corruption deterministically — wrong output, a trap, or an oracle
/// violation, never a clean matching run.
#[test]
fn corrupted_return_address_key_is_caught() {
    let _guard = ENV_LOCK.lock().unwrap();
    let expected = reference_output(SRC).expect("reference runs");
    let module = compile(SRC, &Options::o2()).expect("compiles");
    // The clean run finishes in well under a million steps; a rerouted
    // return may loop, so bound the damage — out-of-fuel is a catch too.
    let opts = jit_opts(GcStrategy::Semispace).fuel(5_000_000);
    let mut ex = Executor::try_new(opts.build_machine(module), opts).expect("valid maps");
    let n = ex.jit_summary().map_or(0, |s| if s.enabled { 1 } else { 0 });
    if n == 0 {
        eprintln!("skipping: no native jit on this host");
        return;
    }
    // Shifting a middle key *up* by one byte makes its own return
    // address floor-resolve to the previous gc-point: an off-by-one
    // into the neighboring call site's tables.
    let points = ex.machine.code_map().expect("jit installs a map").gc_points().len();
    assert!(points >= 2, "need at least two call continuations to confuse");
    let (old_off, new_off) = ex.corrupt_jit_gc_point(points / 2, 1).expect("corruptible");
    assert_eq!(new_off, old_off + 1, "key shifted by exactly one byte");
    match ex.run_main() {
        Ok(out) => assert_ne!(
            out.output, expected,
            "corrupted code map produced a clean, correct run — mutation not caught"
        ),
        Err(e) => {
            // Deterministically detected: an oracle violation, a shadow
            // stale-pointer trap, or a hard VM trap from the rerouted
            // return — all are catches.
            eprintln!("mutation caught: {e}");
        }
    }
}
